// rt::PacketPool: RAII slab recycling, exhaustion backpressure, loud
// failure on ownership bugs, and the PR's headline invariant — the rt
// engine's steady state performs ZERO heap allocations. The whole binary
// runs with a counting global operator new so the guard test can diff the
// allocation counter across a steady-state window.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rt/engine.hpp"
#include "rt/pool.hpp"

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// Counting allocator: every operator-new flavor funnels through here.
// delete is deliberately not counted — the invariant is "no allocations",
// and frees of pre-steady-state memory are harmless.
void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace mflow;
using rt::PacketPool;
using rt::PoolConfig;

TEST(PacketPool, ExhaustionReturnsNullNotAllocation) {
  PacketPool pool(PoolConfig{.slabs = 4});
  std::vector<net::PacketPtr> held;
  for (int i = 0; i < 4; ++i) {
    auto p = pool.acquire();
    ASSERT_NE(p, nullptr);
    held.push_back(std::move(p));
  }
  EXPECT_EQ(pool.in_use(), 4u);
  // Pool dry: the handle is null and the miss is counted — the caller
  // backpressures, the pool NEVER falls back to the heap.
  const std::uint64_t allocs_before = g_new_calls.load();
  EXPECT_EQ(pool.acquire(), nullptr);
  EXPECT_EQ(pool.acquire(), nullptr);
  EXPECT_EQ(g_new_calls.load(), allocs_before);
  EXPECT_EQ(pool.exhausted(), 2u);
  // Releasing one slab makes the next acquire succeed again.
  held.pop_back();
  auto p = pool.acquire();
  EXPECT_NE(p, nullptr);
  held.push_back(std::move(p));
  EXPECT_EQ(pool.acquired(), 5u);
  held.clear();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.recycled(), 5u);
}

TEST(PacketPool, RecycledPacketsAreFullyReset) {
  PacketPool pool(PoolConfig{.slabs = 2});
  net::Packet* first_addr = nullptr;
  const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                          net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                          net::Ipv4Header::kProtoTcp};
  std::size_t dirty_capacity = 0;
  {
    auto pkt = net::make_tcp_segment(pool.acquire(), flow, 1448, 1448);
    ASSERT_NE(pkt, nullptr);
    first_addr = pkt.get();
    // Dirty every metadata field and the buffer (headroom consumed by the
    // pushed Ethernet header, bytes appended for IP/TCP).
    net::vxlan_encap(*pkt, net::Ipv4Addr(192, 168, 0, 1),
                     net::Ipv4Addr(192, 168, 0, 2), 7);
    pkt->flow_id = 9;
    pkt->wire_seq = 123;
    pkt->message_id = 77;
    pkt->message_bytes = 65536;
    pkt->skb_allocated = true;
    pkt->t_wire = 42;
    pkt->gro_segs = 3;
    pkt->microflow_id = 5;
    dirty_capacity = pkt->buf.capacity();
    EXPECT_LT(pkt->buf.headroom(), 64u);
    EXPECT_GT(pkt->buf.size(), 0u);
  }  // handle death -> recycle
  EXPECT_EQ(pool.in_use(), 0u);

  // LIFO free list: the next acquire returns the same slab, reset to the
  // just-constructed state but with its buffer capacity preserved.
  auto again = pool.acquire();
  ASSERT_EQ(again.get(), first_addr);
  EXPECT_EQ(again->buf.size(), 0u);
  EXPECT_EQ(again->buf.headroom(), 64u);
  EXPECT_GE(again->buf.capacity(), dirty_capacity);
  EXPECT_EQ(again->payload_len, 0u);
  EXPECT_EQ(again->flow, net::FlowKey{});
  EXPECT_EQ(again->flow_id, 0u);
  EXPECT_FALSE(again->encapsulated);
  EXPECT_EQ(again->wire_seq, 0u);
  EXPECT_EQ(again->tcp_seq, 0u);
  EXPECT_EQ(again->message_id, 0u);
  EXPECT_EQ(again->message_bytes, 0u);
  EXPECT_FALSE(again->skb_allocated);
  EXPECT_EQ(again->t_wire, 0);
  EXPECT_EQ(again->gro_segs, 1u);
  EXPECT_EQ(again->microflow_id, 0u);
}

TEST(PacketPool, SlabReuseDoesNotAllocate) {
  PacketPool pool(PoolConfig{.slabs = 2});
  const net::FlowKey flow{net::Ipv4Addr(10, 0, 1, 2),
                          net::Ipv4Addr(10, 0, 1, 3), 40000, 5001,
                          net::Ipv4Header::kProtoTcp};
  // Warm once (the first build may grow the slab buffer to its watermark).
  { auto p = net::make_tcp_segment(pool.acquire(), flow, 0, 1448); }
  const std::uint64_t before = g_new_calls.load();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto p = net::make_tcp_segment(pool.acquire(), flow, i * 1448, 1448);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(g_new_calls.load(), before);
}

using PacketPoolDeathTest = ::testing::Test;

TEST(PacketPoolDeathTest, DoubleReleaseAborts) {
  EXPECT_DEATH(
      {
        PacketPool pool(PoolConfig{.slabs = 2});
        auto handle = pool.acquire();
        net::Packet* raw = handle.get();
        handle.reset();     // first release: legal
        pool.recycle(raw);  // second release of the same slab: abort
      },
      "double release");
}

TEST(PacketPoolDeathTest, ForeignPacketAborts) {
  EXPECT_DEATH(
      {
        PacketPool pool(PoolConfig{.slabs = 2});
        net::Packet stack_pkt;
        pool.recycle(&stack_pkt);
      },
      "foreign packet");
}

TEST(PacketPoolDeathTest, LeakedSlabAbortsAtPoolDestruction) {
  EXPECT_DEATH(
      {
        auto pool = std::make_unique<PacketPool>(PoolConfig{.slabs = 2});
        auto handle = pool->acquire();
        net::Packet* leaked = handle.release();  // escape the RAII handle
        pool.reset();                            // slab still out -> abort
        (void)leaked;
      },
      "still in use");
}

// The tentpole invariant: once the rt pipeline reaches steady state, NO
// thread touches the global allocator — packets live in pool slabs, rings
// move handles, recycling is ring-based. The window [2000, 18000) skips
// engine startup (thread spawn, ring/pool construction) and shutdown.
// Two runtime rescales land INSIDE the window: epoch messages ride the
// merger's pre-sized internal ring and the flush markers are plain stack
// values, so a live degree change must not allocate either.
TEST(PacketPool, EngineSteadyStateIsAllocationFree) {
  rt::EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;  // lossless: backpressure, never drop
  cfg.rescales = {{6000, 1}, {11000, 2}};
  constexpr std::uint64_t kTotal = 20000;
  std::atomic<std::uint64_t> at_start{0}, at_end{0};
  std::atomic<std::uint64_t> missing_skb{0};
  const auto res = rt::Engine(cfg).run(kTotal, [&](const rt::RtPacket& pkt) {
    if (!pkt.skb) missing_skb.fetch_add(1, std::memory_order_relaxed);
    if (pkt.seq == 2000)
      at_start.store(g_new_calls.load(), std::memory_order_relaxed);
    else if (pkt.seq == 18000)
      at_end.store(g_new_calls.load(), std::memory_order_relaxed);
  });
  ASSERT_TRUE(res.in_order);
  ASSERT_EQ(res.packets, kTotal);
  ASSERT_EQ(res.packets_dropped, 0u);
  ASSERT_EQ(res.rescales_applied, 2u);
  EXPECT_EQ(missing_skb.load(), 0u);
  EXPECT_GT(res.pool_acquired, 0u);
  // Zero allocations across 16k steady-state packets, from ANY thread.
  EXPECT_EQ(at_end.load() - at_start.load(), 0u)
      << "rt hot path allocated " << (at_end.load() - at_start.load())
      << " times between seq 2000 and 18000";
}

// The acceptance bar for the fast-path cache: overlay mode builds real
// VXLAN bytes into every slab, workers probe per-worker cache tables and
// splice on hits — all of it inside the same zero-allocation envelope.
// Cache tables are sized before thread spawn; encap stays within the
// slab's fixed byte reserve; rescale epochs invalidate entries without
// touching the heap.
TEST(PacketPool, OverlayCachedSteadyStateIsAllocationFree) {
  rt::EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;
  cfg.rescales = {{6000, 1}, {11000, 2}};
  cfg.overlay.enabled = true;
  cfg.overlay.cache = true;
  cfg.overlay.flows = 8;
  constexpr std::uint64_t kTotal = 20000;
  std::atomic<std::uint64_t> at_start{0}, at_end{0};
  std::atomic<std::uint64_t> missing_skb{0};
  const auto res = rt::Engine(cfg).run(kTotal, [&](const rt::RtPacket& pkt) {
    if (!pkt.skb) missing_skb.fetch_add(1, std::memory_order_relaxed);
    if (pkt.seq == 2000)
      at_start.store(g_new_calls.load(), std::memory_order_relaxed);
    else if (pkt.seq == 18000)
      at_end.store(g_new_calls.load(), std::memory_order_relaxed);
  });
  ASSERT_TRUE(res.in_order);
  ASSERT_EQ(res.packets, kTotal);
  ASSERT_EQ(res.packets_dropped, 0u);
  ASSERT_EQ(res.rescales_applied, 2u);
  ASSERT_EQ(res.decap_failures, 0u);
  EXPECT_EQ(missing_skb.load(), 0u);
  EXPECT_GT(res.cache_hits, 0u);
  EXPECT_GT(res.cache_invalidations, 0u);  // the rescales bit
  EXPECT_EQ(at_end.load() - at_start.load(), 0u)
      << "overlay fast path allocated " << (at_end.load() - at_start.load())
      << " times between seq 2000 and 18000";
}

// Pool smaller than the packets in flight: the generator must backpressure
// on slab exhaustion (recycle-ring + pool both dry) and still deliver
// everything in order, rather than allocating or deadlocking.
TEST(PacketPool, TinyPoolBackpressuresLosslessAndOrdered) {
  rt::EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 8;
  cfg.ring_capacity = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;  // lossless
  cfg.pool_capacity = 64;  // far fewer slabs than the rings could hold
  const auto res = rt::Engine(cfg).run(20000);
  EXPECT_EQ(res.packets, 20000u);
  EXPECT_EQ(res.packets_dropped, 0u);
  EXPECT_TRUE(res.in_order);
  EXPECT_GT(res.pool_acquired, 0u);
}
