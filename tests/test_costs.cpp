// Cost-model invariants: the structural relations the paper's measurements
// establish and the calibration must preserve (regression guard for anyone
// editing stack/costs.hpp).
#include <gtest/gtest.h>

#include "stack/costs.hpp"

using namespace mflow::stack;

TEST(CostModel, VxlanIsTheHeavyweightDevice) {
  const CostModel c = default_costs();
  EXPECT_GT(c.vxlan_per_skb, c.bridge_per_skb + c.veth_per_skb);
  EXPECT_GT(c.vxlan_per_skb, c.ip_rx_per_skb);
  EXPECT_GT(c.vxlan_per_skb, c.tcp_rx_per_skb);
}

TEST(CostModel, SkbAllocDominatesStageOne) {
  const CostModel c = default_costs();
  // "core one again was overloaded — now purely by the skb allocation
  // function" — skb alloc must be the larger half of stage 1.
  EXPECT_GT(c.skb_alloc, c.driver_poll_per_pkt);
}

TEST(CostModel, CopyThreadCeilingNearPaperAnchor) {
  const CostModel c = default_costs();
  // One core copying at copy_per_byte ns/B caps out around 30 Gbps
  // (before per-skb TCP/merge work), the paper's new bottleneck.
  const double ceiling_gbps = 8.0 / c.copy_per_byte;
  EXPECT_GT(ceiling_gbps, 28.0);
  EXPECT_LT(ceiling_gbps, 60.0);
}

TEST(CostModel, MflowSteeringCheaperPerPacketThanFalcon) {
  const CostModel c = default_costs();
  // The design claim: batch-amortized dispatch beats per-skb handoff.
  const double mflow_per_pkt =
      static_cast<double>(c.mflow_split_per_pkt) +
      static_cast<double>(c.mflow_dispatch_per_batch) / 256.0;
  EXPECT_LT(mflow_per_pkt, static_cast<double>(c.remote_enqueue));
}

TEST(CostModel, BatchMergeCheaperThanOfoQueue) {
  const CostModel c = default_costs();
  // Per-packet: batch-based reassembly (merge/skb + merge/batch amortized)
  // must undercut the kernel's per-packet ofo insert.
  const double merge_per_pkt =
      static_cast<double>(c.mflow_merge_per_skb) +
      static_cast<double>(c.mflow_merge_per_batch) / 256.0;
  EXPECT_LT(merge_per_pkt, static_cast<double>(c.tcp_ofo_insert) / 2);
}

TEST(CostModel, OverlayTxPathDwarfsNativeTx) {
  const CostModel c = default_costs();
  // Why the paper's UDP clients throttle: the container egress path is
  // several times the bare send cost.
  EXPECT_GT(c.client_overlay_tx_per_pkt, 4 * c.client_udp_per_pkt);
}

TEST(CostModel, NativeStageOneNearPaperAnchor) {
  const CostModel c = default_costs();
  // Native TCP at 26.6 Gbps saturating one core = ~430-440 ns/pkt for
  // driver + skb + GRO + per-seg TCP + amortized per-super work.
  const double per_pkt = static_cast<double>(
      c.driver_poll_per_pkt + c.skb_alloc + c.gro_per_seg +
      c.tcp_rx_per_seg +
      (c.ip_rx_per_skb + c.tcp_rx_per_skb + c.sock_enqueue) / 44);
  EXPECT_GT(per_pkt, 350.0);
  EXPECT_LT(per_pkt, 520.0);
}
