// Reporting helpers: expectation verdicts and formatted output.
#include <gtest/gtest.h>

#include <sstream>

#include "experiment/report.hpp"

using namespace mflow::exp;

TEST(Expectation, HoldsWithinTolerance) {
  EXPECT_TRUE((Expectation{"x", 2.0, 2.2, 0.15}).holds());
  EXPECT_FALSE((Expectation{"x", 2.0, 2.5, 0.15}).holds());
  EXPECT_TRUE((Expectation{"x", 2.0, 1.8, 0.15}).holds());
  // Zero expected compares absolutely.
  EXPECT_TRUE((Expectation{"x", 0.0, 0.05, 0.1}).holds());
  EXPECT_FALSE((Expectation{"x", 0.0, 0.5, 0.1}).holds());
}

TEST(Expectation, PrintsVerdicts) {
  std::ostringstream os;
  print_expectations(os, "t", {{"ok-check", 1.0, 1.05, 0.10},
                               {"bad-check", 1.0, 2.0, 0.10}});
  const auto s = os.str();
  EXPECT_NE(s.find("ok-check"), std::string::npos);
  EXPECT_NE(s.find("OK"), std::string::npos);
  EXPECT_NE(s.find("DEVIATES"), std::string::npos);
}

TEST(Report, CoreBreakdownFiltersIdleCores) {
  ScenarioResult res;
  CoreUsage busy;
  busy.core_id = 1;
  busy.total = 0.8;
  busy.by_tag[static_cast<std::size_t>(mflow::sim::Tag::kVxlan)] = 0.5;
  CoreUsage idle;
  idle.core_id = 2;
  idle.total = 0.001;
  res.cores = {busy, idle};
  std::ostringstream os;
  print_core_breakdown(os, "cpu", res);
  const auto s = os.str();
  EXPECT_NE(s.find("vxlan=50%"), std::string::npos);
  EXPECT_EQ(s.find("\n2 "), std::string::npos);  // idle core hidden
}

TEST(Report, ThroughputRowMentionsMode) {
  ScenarioResult res;
  res.mode = "mflow";
  res.goodput_gbps = 12.34;
  const auto s = throughput_row(res);
  EXPECT_NE(s.find("mflow"), std::string::npos);
  EXPECT_NE(s.find("12.34"), std::string::npos);
}
