// Sharded, expiring FlowTable (control/flowtable): open-addressing
// correctness under delete-heavy churn (backward-shift deletion), the
// monotone recency chain, TTL expiry, capacity eviction and the
// determinism + concurrency contracts the control plane and rt engine
// rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "control/flowtable.hpp"

using namespace mflow;
using control::FlowTable;
using control::FlowTableParams;

namespace {

FlowTableParams small_params(std::size_t capacity, sim::Time ttl = 0,
                             std::size_t shards = 1) {
  FlowTableParams p;
  p.shards = shards;
  p.capacity = capacity;
  p.ttl = ttl;
  return p;
}

}  // namespace

TEST(FlowTable, InsertFindErase) {
  FlowTable<int> t(small_params(64));
  bool inserted = false;
  t.upsert(7, 10, &inserted) = 42;
  EXPECT_TRUE(inserted);
  t.upsert(7, 20, &inserted) = 43;
  EXPECT_FALSE(inserted);
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_EQ(*t.find(7), 43);
  EXPECT_EQ(t.find(8), nullptr);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(7));
  EXPECT_FALSE(t.erase(7));
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

// Collision-heavy churn in one tiny shard: every live key must stay
// findable through interleaved inserts and deletes — the property
// backward-shift deletion exists to preserve (a tombstone-free linear
// probe breaks lookups if deletion leaves false empties in probe runs).
TEST(FlowTable, BackwardShiftDeletionKeepsProbeRunsIntact) {
  FlowTable<std::uint64_t> t(small_params(128));
  std::set<net::FlowId> live;
  std::uint64_t next_key = 1;
  sim::Time now = 0;
  // Deterministic mixed workload: phases of insert bursts and deletes of
  // every third live key, several times over, at near-full occupancy.
  for (int round = 0; round < 20; ++round) {
    while (live.size() < 100) {
      const net::FlowId k = next_key++;
      t.upsert(k, ++now) = k * 3;
      live.insert(k);
    }
    int i = 0;
    for (auto it = live.begin(); it != live.end();) {
      if (++i % 3 == 0) {
        EXPECT_TRUE(t.erase(*it));
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    for (const net::FlowId k : live) {
      ASSERT_NE(t.find(k), nullptr) << "lost key " << k;
      EXPECT_EQ(*t.find(k), k * 3);
    }
    EXPECT_EQ(t.size(), live.size());
  }
}

TEST(FlowTable, TtlExpiresIdleOldestFirst) {
  FlowTable<int> t(small_params(64, /*ttl=*/100));
  t.upsert(1, 0) = 1;
  t.upsert(2, 10) = 2;
  t.upsert(3, 50) = 3;
  t.touch(1, 60);  // refreshed: now youngest

  std::vector<net::FlowId> idle;
  t.collect_idle(110, idle);  // deadline 10: keys stamped <= 10
  EXPECT_EQ(idle, (std::vector<net::FlowId>{2}));

  std::vector<std::pair<net::FlowId, int>> expired;
  const std::size_t n = t.expire_idle(
      150, [&](net::FlowId k, int&& v) { expired.emplace_back(k, v); });
  EXPECT_EQ(n, 2u);  // deadline 50: key 2 (t=10) and key 3 (t=50)
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].first, 2u);
  EXPECT_EQ(expired[1].first, 3u);
  EXPECT_NE(t.find(1), nullptr);
  EXPECT_EQ(t.find(2), nullptr);
  EXPECT_EQ(t.expirations(), 2u);
}

TEST(FlowTable, TtlZeroNeverExpires) {
  FlowTable<int> t(small_params(8, /*ttl=*/0));
  t.upsert(1, 0) = 1;
  EXPECT_EQ(t.expire_idle(1'000'000), 0u);
  std::vector<net::FlowId> idle;
  t.collect_idle(1'000'000, idle);
  EXPECT_TRUE(idle.empty());
}

TEST(FlowTable, CapacityEvictsLruThroughReclaim) {
  FlowTable<int> t(small_params(4));
  std::vector<std::pair<net::FlowId, int>> reclaimed;
  t.set_reclaim(
      [&](net::FlowId k, int&& v) { reclaimed.emplace_back(k, v); });
  for (net::FlowId k = 1; k <= 4; ++k)
    t.upsert(k, static_cast<sim::Time>(k)) = static_cast<int>(k * 10);
  t.touch(1, 100);  // 2 becomes the LRU
  t.upsert(5, 101) = 50;
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.evictions(), 1u);
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0].first, 2u);
  EXPECT_EQ(reclaimed[0].second, 20);
  EXPECT_EQ(t.find(2), nullptr);
  EXPECT_NE(t.find(1), nullptr);
  EXPECT_NE(t.find(5), nullptr);
}

// A FlowId reused after expiry must start value-initialized — no stale
// state resurrection (the churn bug class this table exists to fix).
TEST(FlowTable, ReuseAfterExpiryStartsFresh) {
  FlowTable<int> t(small_params(8, /*ttl=*/10));
  t.upsert(1, 0) = 99;
  EXPECT_EQ(t.expire_idle(20), 1u);
  bool inserted = false;
  int& v = t.upsert(1, 21, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(v, 0);
}

TEST(FlowTable, TouchIsMonotone) {
  FlowTable<int> t(small_params(8, /*ttl=*/10));
  t.upsert(1, 100) = 1;
  t.upsert(2, 101) = 2;
  // A stale touch (older than the stamp) is refused and does not disturb
  // expiry order; an equal-time touch is accepted but must not reorder.
  EXPECT_FALSE(t.touch(1, 50));
  EXPECT_TRUE(t.touch(1, 100));
  EXPECT_FALSE(t.touch(99, 100));  // absent: never resurrects
  std::vector<net::FlowId> expired;
  t.expire_idle(111, [&](net::FlowId k, int&&) { expired.push_back(k); });
  EXPECT_EQ(expired, (std::vector<net::FlowId>{1, 2}));
}

// Same operation history => same iteration order and same counters, the
// property every DES consumer (and the rt engine's batch-clock scheme)
// depends on.
TEST(FlowTable, DeterministicAcrossIdenticalHistories) {
  auto run = [] {
    FlowTable<std::uint64_t> t(small_params(256, /*ttl=*/64, /*shards=*/4));
    for (std::uint64_t i = 0; i < 2000; ++i) {
      t.upsert(i % 300, static_cast<sim::Time>(i)) = i;
      if (i % 7 == 0) t.touch(i % 150, static_cast<sim::Time>(i));
      if (i % 97 == 0) t.expire_idle(static_cast<sim::Time>(i));
    }
    std::vector<std::pair<net::FlowId, std::uint64_t>> entries;
    t.for_each([&](net::FlowId k, const std::uint64_t& v) {
      entries.emplace_back(k, v);
    });
    return std::tuple(entries, t.size(), t.peak_size(), t.evictions(),
                      t.expirations());
  };
  EXPECT_EQ(run(), run());
}

TEST(FlowTable, PeakTracksHighWaterNotCumulative) {
  FlowTable<int> t(small_params(1024, /*ttl=*/8));
  for (std::uint64_t i = 0; i < 512; ++i) {
    t.upsert(i, static_cast<sim::Time>(i)) = 1;
    t.expire_idle(static_cast<sim::Time>(i));
  }
  // Live window is ttl entries (one insert per tick): cumulative 512
  // flows, but never more than ~ttl+1 resident.
  EXPECT_LE(t.peak_size(), 9u);
  EXPECT_EQ(t.expirations() + t.size(), 512u);
}

// Concurrency smoke for tsan: writers upsert/touch disjoint key ranges
// while a sweeper expires — the rt engine's exact sharing pattern.
TEST(FlowTable, ConcurrentUpsertTouchExpire) {
  FlowTable<std::uint64_t> t(small_params(1 << 12, /*ttl=*/256,
                                          /*shards=*/8));
  constexpr int kWriters = 3;
  constexpr std::uint64_t kOps = 20'000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&t, w] {
      const net::FlowId base = static_cast<net::FlowId>(w + 1) << 32;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const net::FlowId k = base + (i % 512);
        t.upsert_apply(k, static_cast<sim::Time>(i),
                       [i](std::uint64_t& v) { v = i; });
        t.touch(k, static_cast<sim::Time>(i));
      }
    });
  }
  threads.emplace_back([&t] {
    for (std::uint64_t i = 0; i < kOps; i += 64)
      t.expire_idle(static_cast<sim::Time>(i));
  });
  for (auto& th : threads) th.join();
  t.expire_idle(static_cast<sim::Time>(kOps + 1000));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_LE(t.peak_size(), t.capacity());
}
