// Fault injection and loss-tolerant reassembly.
//
// The seed reassembler assumed the splitting-core -> merge-point handoff was
// lossless: one packet lost in flight wedged its flow's merge counter
// forever. These tests cover the two recovery paths (synchronous note_drop
// retraction and the sim-time eviction reaper), the pre-split ordering gate,
// the injector itself, and the end-to-end acceptance scenario — including a
// run that reproduces the seed wedge by disabling both recovery paths.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/reassembler.hpp"
#include "experiment/scenario.hpp"
#include "net/fault.hpp"
#include "sim/simulator.hpp"

using namespace mflow;

namespace {

net::PacketPtr mk(net::FlowId flow, std::uint64_t wire_seq,
                  std::uint64_t microflow, std::uint32_t segs = 1) {
  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                   2, net::Ipv4Header::kProtoUdp},
      100);
  p->flow_id = flow;
  p->wire_seq = wire_seq;
  p->microflow_id = microflow;
  p->gro_segs = segs;
  return p;
}

/// Dispatch `n` single-seg packets into `batch` and return them (the caller
/// chooses which ones actually get deposited — the rest are "lost").
std::vector<net::PacketPtr> dispatch_batch(core::Reassembler& ra,
                                           net::FlowId flow,
                                           std::uint64_t batch, int n,
                                           std::uint64_t first_seq) {
  ra.note_batch_open(flow, batch);
  std::vector<net::PacketPtr> pkts;
  for (int i = 0; i < n; ++i) {
    ra.note_dispatch(flow, batch, 1);
    pkts.push_back(mk(flow, first_seq + static_cast<std::uint64_t>(i), batch));
  }
  return pkts;
}

}  // namespace

// ---- note_drop ----------------------------------------------------------------

TEST(FaultRecovery, WholeBatchDropAdvancesMerge) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  auto b1 = dispatch_batch(ra, 1, 1, 3, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 2, 3);
  for (auto& p : b2) ra.deposit(std::move(p), 3);
  EXPECT_FALSE(ra.pop_ready_available());  // batch 1 missing entirely
  ra.note_drop(1, 1, 3);                   // all of batch 1 lost
  std::vector<std::uint64_t> order;
  while (auto p = ra.pop_ready()) order.push_back(p->wire_seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ra.drops_recovered(), 3u);
  EXPECT_EQ(ra.segs_dispatched(), ra.segs_merged() + ra.drops_recovered());
  EXPECT_FALSE(ra.any_flow_blocked());
}

TEST(FaultRecovery, PartialBatchDropDeliversSurvivors) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  auto b1 = dispatch_batch(ra, 1, 1, 3, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 1, 3);
  ra.deposit(std::move(b1[0]), 2);  // b1[1] is lost
  ra.deposit(std::move(b1[2]), 2);
  ra.deposit(std::move(b2[0]), 3);
  EXPECT_NE(ra.pop_ready(), nullptr);  // wire 0
  EXPECT_NE(ra.pop_ready(), nullptr);  // wire 2 (same batch, consumable)
  EXPECT_EQ(ra.pop_ready(), nullptr);  // batch 1 still short one segment
  ra.note_drop(1, 1, 1);
  auto p = ra.pop_ready();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->wire_seq, 3u);
  EXPECT_EQ(ra.drops_recovered(), 1u);
  EXPECT_EQ(ra.segs_dispatched(), ra.segs_merged() + ra.drops_recovered());
}

TEST(FaultRecovery, FinalOpenBatchDropDoesNotWedgeLaterDeposits) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  // Batch 1 stays open (no later batch): a loss inside it must not block
  // the segments that keep arriving for the same batch.
  auto b1 = dispatch_batch(ra, 1, 1, 3, 0);
  ra.deposit(std::move(b1[0]), 2);
  ra.note_drop(1, 1, 1);  // b1[1] lost
  ra.deposit(std::move(b1[2]), 2);
  std::vector<std::uint64_t> order;
  while (auto p = ra.pop_ready()) order.push_back(p->wire_seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(ra.buffered_packets(), 0u);
  EXPECT_FALSE(ra.any_flow_blocked());
}

TEST(FaultRecovery, NoteDropIsBoundedAndIdempotent) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  auto b1 = dispatch_batch(ra, 1, 1, 2, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 1, 2);
  ra.deposit(std::move(b2[0]), 3);
  // Over-retraction (duplicate loss reports, retraction racing a deposit)
  // must clamp at what is actually outstanding.
  ra.note_drop(1, 1, 100);
  EXPECT_EQ(ra.drops_recovered(), 2u);
  ra.note_drop(1, 1, 1);  // batch already complete: no-op
  EXPECT_EQ(ra.drops_recovered(), 2u);
  auto p = ra.pop_ready();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->wire_seq, 2u);
  // Retraction for a batch the counter already passed is ignored.
  ra.note_drop(1, 1, 1);
  EXPECT_EQ(ra.drops_recovered(), 2u);
  // Unknown flow: no crash, no accounting.
  ra.note_drop(99, 1, 1);
  EXPECT_EQ(ra.drops_recovered(), 2u);
  EXPECT_EQ(ra.buffered_packets(), 0u);
}

// ---- eviction -----------------------------------------------------------------

TEST(FaultRecovery, EvictionRecoversSilentLoss) {
  stack::CostModel costs;
  sim::Simulator sim(1);
  core::Reassembler ra(costs, &sim,
                       core::ReassemblerParams{.eviction_timeout = sim::ms(1)});
  auto b1 = dispatch_batch(ra, 1, 1, 2, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 1, 2);
  ra.deposit(std::move(b1[0]), 2);  // b1[1] silently lost — nobody calls
  ra.deposit(std::move(b2[0]), 3);  // note_drop
  EXPECT_NE(ra.pop_ready(), nullptr);
  EXPECT_EQ(ra.pop_ready(), nullptr);
  EXPECT_TRUE(ra.any_flow_blocked());
  sim.run();  // mark-and-sweep reaper: evicts within 2 timeouts
  EXPECT_EQ(ra.evictions(), 1u);
  EXPECT_EQ(ra.drops_recovered(), 1u);
  auto p = ra.pop_ready();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->wire_seq, 2u);
  EXPECT_FALSE(ra.any_flow_blocked());
  EXPECT_EQ(ra.segs_dispatched(), ra.segs_merged() + ra.drops_recovered());
  EXPECT_GT(ra.recovery_latency_ns().count(), 0u);
  EXPECT_EQ(ra.take_pending_charge() > 0, true);  // eviction sweep charged
}

TEST(FaultRecovery, LateArrivalAfterEvictionDeliversOutOfOrder) {
  stack::CostModel costs;
  sim::Simulator sim(1);
  core::Reassembler ra(costs, &sim,
                       core::ReassemblerParams{.eviction_timeout = sim::us(100)});
  auto b1 = dispatch_batch(ra, 1, 1, 1, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 1, 1);
  ra.deposit(std::move(b2[0]), 3);  // batch 1's packet is delayed, not lost
  sim.run();                        // eviction writes batch 1 off
  EXPECT_EQ(ra.evictions(), 1u);
  EXPECT_NE(ra.pop_ready(), nullptr);  // batch 2 flows
  ra.deposit(std::move(b1[0]), 2);     // straggler finally shows up
  EXPECT_EQ(ra.late_deliveries(), 1u);
  auto p = ra.pop_ready();  // delivered anyway (out of order), not leaked
  ASSERT_TRUE(p);
  EXPECT_EQ(p->wire_seq, 0u);
  EXPECT_EQ(ra.buffered_packets(), 0u);
}

TEST(FaultRecovery, SeedBehaviourWedgesForeverWithoutEviction) {
  // The paper's lossless assumption (eviction_timeout = 0, nobody calls
  // note_drop): one silent loss and the flow is permanently blocked.
  stack::CostModel costs;
  sim::Simulator sim(1);
  core::Reassembler ra(costs, &sim, core::ReassemblerParams{});
  auto b1 = dispatch_batch(ra, 1, 1, 2, 0);
  auto b2 = dispatch_batch(ra, 1, 2, 1, 2);
  ra.deposit(std::move(b1[0]), 2);
  ra.deposit(std::move(b2[0]), 3);
  EXPECT_NE(ra.pop_ready(), nullptr);
  sim.run();  // nothing scheduled: no reaper without a timeout
  EXPECT_EQ(ra.pop_ready(), nullptr);
  EXPECT_TRUE(ra.any_flow_blocked());
  EXPECT_EQ(ra.drops_recovered(), 0u);
  EXPECT_EQ(ra.evictions(), 0u);
}

// ---- pre-split ordering gate ---------------------------------------------------

TEST(PreSplitGate, HoldsBatchOneUntilPassthroughDrains) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  // Flow crossed the elephant threshold with 2 default-path packets still
  // in flight behind the split point.
  ra.note_flow_split(1, 2);
  auto b1 = dispatch_batch(ra, 1, 1, 1, 2);
  ra.deposit(std::move(b1[0]), 2);
  EXPECT_FALSE(ra.pop_ready_available());  // would overtake the stragglers
  ra.deposit(mk(1, 0, /*microflow=*/0), 1);
  EXPECT_NE(ra.pop_ready(), nullptr);  // passthrough flows immediately
  EXPECT_FALSE(ra.pop_ready_available());  // still one straggler short
  ra.deposit(mk(1, 1, 0), 1);
  std::vector<std::uint64_t> order;
  while (auto p = ra.pop_ready()) order.push_back(p->wire_seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));  // original order
}

TEST(PreSplitGate, GraceTimeoutOpensGateWhenStragglersNeverArrive) {
  stack::CostModel costs;
  sim::Simulator sim(1);
  core::Reassembler ra(costs, &sim,
                       core::ReassemblerParams{.gate_grace = sim::us(100)});
  ra.note_flow_split(1, 2);  // 2 stragglers that will never arrive (lost)
  auto b1 = dispatch_batch(ra, 1, 1, 1, 2);
  ra.deposit(std::move(b1[0]), 2);
  EXPECT_FALSE(ra.pop_ready_available());
  bool woke = false;
  ra.set_ready_callback([&] { woke = true; });
  sim.run();  // grace elapses: the gate stops waiting
  EXPECT_TRUE(woke);
  auto p = ra.pop_ready();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->wire_seq, 2u);
}

// ---- the injector itself -------------------------------------------------------

TEST(FaultInjector, DeterministicUnderSeed) {
  net::FaultPlan plan;
  plan.split_queue.drop = 0.3;
  plan.split_queue.duplicate = 0.2;
  plan.seed = 7;
  net::FaultInjector a(plan), b(plan);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(a.decide(net::FaultPoint::kSplitQueue),
              b.decide(net::FaultPoint::kSplitQueue));
  EXPECT_EQ(a.total_drops(), b.total_drops());
  EXPECT_GT(a.total_drops(), 0u);
  EXPECT_GT(a.total_duplicates(), 0u);
  EXPECT_EQ(a.drops(net::FaultPoint::kSplitQueue), a.total_drops());
  EXPECT_EQ(a.drops(net::FaultPoint::kNicRing), 0u);
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  net::FaultInjector inj(net::FaultPlan{});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(inj.decide(net::FaultPoint::kHandoff), net::FaultAction::kNone);
  EXPECT_EQ(inj.total_drops() + inj.total_corruptions() +
                inj.total_duplicates() + inj.total_delays(),
            0u);
}

TEST(FaultInjector, CorruptionIsChecksumVisible) {
  auto pkt = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                   2, net::Ipv4Header::kProtoUdp},
      100);
  const std::span<const std::uint8_t> ip_hdr =
      pkt->buf.data().subspan(net::EthernetHeader::kSize);
  ASSERT_TRUE(net::Ipv4Header::verify(ip_hdr));
  net::FaultPlan plan;
  plan.nic_ring.corrupt = 1.0;
  net::FaultInjector inj(plan);
  inj.corrupt(*pkt);
  // The flip lands in the outer IPv4 header: a verifying stage will drop
  // the packet instead of software silently consuming garbage.
  EXPECT_FALSE(net::Ipv4Header::verify(ip_hdr));
}

// ---- acceptance: end-to-end scenario under injected loss -----------------------

namespace {

exp::ScenarioConfig run_faulty_udp(double drop, sim::Time eviction_timeout,
                                   double delay_rate = 0.0) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoUdp;
  cfg.message_size = 1448;  // one datagram per message
  cfg.warmup = 0;           // so engine stats align with injector totals
  cfg.measure = sim::ms(10);
  auto mcfg = core::udp_device_scaling_config();
  mcfg.merge_eviction_timeout = eviction_timeout;
  cfg.mflow = mcfg;
  cfg.faults.split_queue.drop = drop;
  cfg.faults.split_queue.delay = delay_rate;
  // "Lost" within the run's horizon: the delayed copy lands only after the
  // simulation ends, so nothing ever retracts it — eviction's job.
  cfg.faults.split_queue.delay_ns = sim::ms(100);
  return cfg;
}

}  // namespace

TEST(FaultScenario, OnePercentLossRecoversExactlyAndKeepsGoodput) {
  exp::ScenarioConfig lossless = run_faulty_udp(0.0, sim::ms(1));
  exp::ScenarioConfig lossy = run_faulty_udp(0.01, sim::ms(1));
  const auto base = exp::run_scenario(lossless);
  const auto res = exp::run_scenario(lossy);
  // Every injected drop was retracted — no more, no fewer.
  EXPECT_GT(res.injected_drops, 0u);
  EXPECT_EQ(res.drops_recovered, res.injected_drop_segs);
  EXPECT_EQ(res.evictions, 0u);  // known drops retract synchronously
  // Survivors flow: goodput within a few percent of the lossless run
  // (1% loss can cost at most ~1% goodput plus merge jitter).
  EXPECT_GT(res.goodput_gbps, base.goodput_gbps * 0.95);
  EXPECT_GT(res.messages, 0u);
}

TEST(FaultScenario, SilentLossIsEvictedNotWedged) {
  // Packets delayed past the end of the run are losses nobody announces:
  // only the eviction reaper can recover them.
  const auto res =
      exp::run_scenario(run_faulty_udp(0.0, sim::ms(1), /*delay_rate=*/0.01));
  EXPECT_GT(res.injected_delays, 0u);
  EXPECT_GT(res.evictions, 0u);
  EXPECT_GT(res.drops_recovered, 0u);
  EXPECT_GT(res.recovery_latency_ns.count(), 0u);
  // Recovery happens within ~2 eviction timeouts of the stall.
  EXPECT_LT(res.recovery_latency_ns.mean(), 3e6);
  EXPECT_GT(res.messages, 1000u);  // traffic kept flowing throughout
}

TEST(FaultScenario, SeedBehaviourStallsOnSameScenario) {
  // Same silent-loss scenario with eviction disabled (the seed's lossless
  // assumption): the flow wedges at the first unannounced loss and goodput
  // collapses. Losses are rare and the eviction timeout short, so the
  // recovering run's stall duty cycle stays small — the whole difference
  // between the two runs is the wedge.
  const auto good = exp::run_scenario(
      run_faulty_udp(0.0, sim::us(200), /*delay_rate=*/0.001));
  const auto seed =
      exp::run_scenario(run_faulty_udp(0.0, /*eviction=*/0, 0.001));
  EXPECT_EQ(seed.evictions, 0u);
  EXPECT_EQ(seed.drops_recovered, 0u);
  EXPECT_TRUE(seed.flows_blocked);  // wedged, and nothing left to clear it
  // The wedged run delivers a small fraction of the recovering run.
  EXPECT_LT(seed.goodput_gbps, good.goodput_gbps * 0.2);
}

TEST(FaultScenario, TightElephantThresholdTransitionStaysInOrder) {
  // A flow that crosses the elephant threshold almost immediately: batch 1
  // is dispatched while the first default-path packets are still in flight.
  // Without the pre-split gate the split path overtakes them (reorder at
  // the socket); with it, message accounting stays gap-free.
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 16384;
  cfg.warmup = sim::ms(3);
  cfg.measure = sim::ms(8);
  auto mcfg = core::udp_device_scaling_config();  // kBeforeStage split
  mcfg.tcp_in_reader = true;
  mcfg.elephant_threshold_pkts = 30;  // tight: transition mid-first-message
  cfg.mflow = mcfg;
  const auto res = exp::run_scenario(cfg);
  EXPECT_GT(res.batches_merged, 0u);  // the flow really did get split
  // Message accounting only advances on in-order byte arrival; completions
  // matching goodput proves the transition introduced no gaps.
  const double expected =
      res.goodput_gbps * 1e9 / 8 / 16384 * sim::to_seconds(sim::ms(8));
  EXPECT_NEAR(static_cast<double>(res.messages), expected, expected * 0.05);
}

// ---- adaptive controller dead zone --------------------------------------------

TEST(AdaptiveBatch, TrickleReorderingStillShrinksBatch) {
  // Regression: the controller used to shrink only at an *exactly* zero
  // reorder rate, so background interference jitter (a handful of OOO
  // arrivals per interval) pinned the batch at its starting size forever.
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(30);
  ASSERT_TRUE(cfg.interference.enabled);  // the trickle source
  auto mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.batch_size = 2048;
  cfg.mflow = mcfg;
  cfg.adaptive_batch = true;
  const auto res = exp::run_scenario(cfg);
  EXPECT_GT(res.ooo_arrivals, 0u);    // reordering was nonzero...
  EXPECT_LT(res.final_batch, 2048u);  // ...and the batch still probed down
}
