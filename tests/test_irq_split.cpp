// IRQ-splitting: stage-1 parallelization before skb allocation.
#include <gtest/gtest.h>

#include "core/mflow.hpp"
#include "overlay/topology.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

struct IrqRig {
  sim::Simulator sim{1};
  stack::Machine machine;
  core::MflowConfig cfg;
  std::unique_ptr<core::MflowEngine> engine;

  explicit IrqRig(bool paired = false) : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoTcp;
    spec.tcp_in_reader = true;  // merge before the stateful layer
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));

    cfg = core::tcp_full_path_config();
    cfg.batch_size = 16;
    if (!paired) cfg.pipeline_pairs.clear();
    if (paired) {
      machine.set_steering(std::make_unique<steer::PairedPipelineSteering>(
          std::unordered_map<int, int>{{2, 4}, {3, 5}}, stack::StageId::kGro));
    } else {
      machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    }

    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoTcp;
    sc.message_size = 1448;
    sc.tcp_in_reader = true;
    machine.add_socket(5000, sc);
    machine.start();

    engine = std::make_unique<core::MflowEngine>(machine, cfg);
    engine->attach_socket(5000, machine.socket(5000));
    engine->install();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 8;
    return mp;
  }

  void deliver(int n) {
    for (int i = 0; i < n; ++i) {
      auto p = net::make_tcp_segment(
          net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                       net::Ipv4Addr(10, 0, 1, 3), 40000, 5000,
                       net::Ipv4Header::kProtoTcp},
          static_cast<std::uint64_t>(i) * 1448, 1448);
      p->flow_id = 1;
      p->message_id = static_cast<std::uint64_t>(i);
      p->message_bytes = 1448;
      net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
      machine.nic().deliver(std::move(p), sim.now());
    }
  }
};

}  // namespace

TEST(IrqSplit, SkbAllocationMovesToSplittingCores) {
  IrqRig rig;
  rig.deliver(64);
  rig.sim.run();
  // First half (descriptor poll) on the IRQ core; skb allocation split.
  EXPECT_GT(rig.machine.core(1).busy_ns(sim::Tag::kDriver), 0);
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kSkbAlloc), 0);
  EXPECT_GT(rig.machine.core(2).busy_ns(sim::Tag::kSkbAlloc), 0);
  EXPECT_GT(rig.machine.core(3).busy_ns(sim::Tag::kSkbAlloc), 0);
}

TEST(IrqSplit, AllSegmentsDeliveredInOrder) {
  IrqRig rig;
  rig.deliver(300);
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 300u);
  EXPECT_EQ(st.payload_bytes, 300u * 1448u);
  // Merge-before-TCP means the reader-side receiver saw zero reordering.
  EXPECT_EQ(rig.machine.socket(5000).tcp_receiver().ofo_insertions(), 0u);
  EXPECT_EQ(rig.machine.socket(5000).tcp_receiver().duplicates_dropped(),
            0u);
}

TEST(IrqSplit, PerBranchPipeliningUsesPartnerCores) {
  IrqRig rig(/*paired=*/true);
  rig.deliver(64);
  rig.sim.run();
  // skb alloc on 2/3; GRO + devices on partners 4/5.
  EXPECT_GT(rig.machine.core(2).busy_ns(sim::Tag::kSkbAlloc), 0);
  EXPECT_GT(rig.machine.core(4).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(rig.machine.core(5).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_EQ(rig.machine.core(2).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 64u);
}

TEST(IrqSplit, DriverReleaseBatched) {
  IrqRig rig;
  rig.deliver(300);
  rig.sim.run();
  // release_batch=128: 300 requests over 2 cores -> ~1 release update each.
  const auto rel2 = rig.machine.core(2).busy_ns(sim::Tag::kDriver);
  const auto rel3 = rig.machine.core(3).busy_ns(sim::Tag::kDriver);
  const auto& costs = rig.machine.costs();
  EXPECT_EQ((rel2 + rel3) % costs.driver_release_update, 0);
  EXPECT_GT(rel2 + rel3, 0);
}

TEST(IrqSplit, MouseFlowsBypassSplitting) {
  IrqRig rig;
  rig.engine = nullptr;  // rebuild engine with a high elephant threshold
  rig.cfg.elephant_threshold_pkts = 1000000;
  rig.engine = std::make_unique<core::MflowEngine>(rig.machine, rig.cfg);
  rig.engine->attach_socket(5000, rig.machine.socket(5000));
  rig.engine->install();
  rig.deliver(50);
  rig.sim.run();
  // Under the threshold everything runs the stock path on the IRQ core.
  EXPECT_GT(rig.machine.core(1).busy_ns(sim::Tag::kSkbAlloc), 0);
  EXPECT_EQ(rig.machine.core(2).busy_ns(sim::Tag::kSkbAlloc), 0);
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 50u);
}
