// Elastic tier: Autoscaler policy (sizing, hysteresis, flap guard, veto
// retry, core-seconds metering), the Controller x Autoscaler interplay
// through one CapacityTarget, the DES elastic scenario end to end, and the
// rt engine's live capacity channel (including degrading to unpinned when
// the host is too small to pin).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "control/autoscaler.hpp"
#include "control/capacity.hpp"
#include "control/policy.hpp"
#include "core/mflow.hpp"
#include "experiment/scenario.hpp"
#include "experiment/workloads.hpp"
#include "overlay/topology.hpp"
#include "rt/engine.hpp"
#include "sim/time.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

/// Full-interface fake: capacity commits mutate `active`, and the next
/// `veto_next` shrink attempts are refused (a drain in flight).
struct FakeCapacity final : control::CapacityTarget {
  std::uint32_t limit = 8;
  std::uint32_t active_now = 1;
  int veto_next = 0;
  std::vector<std::pair<net::FlowId, std::uint32_t>> degree_calls;

  void set_flow_degree(net::FlowId flow, std::uint32_t degree) override {
    degree_calls.emplace_back(flow, degree);
  }
  std::uint32_t max_degree() const override { return active_now; }
  std::uint32_t worker_limit() const override { return limit; }
  std::uint32_t active_workers() const override { return active_now; }
  bool set_active_workers(std::uint32_t workers) override {
    if (workers < active_now && veto_next > 0) {
      --veto_next;
      return false;
    }
    active_now = workers;
    return true;
  }
};

control::AutoscalerParams fast_params() {
  control::AutoscalerParams p;
  p.per_worker_pps = 100'000.0;
  p.headroom = 1.0;
  p.cooldown = 0;
  p.down_dwell = sim::ms(1);
  return p;
}

}  // namespace

// --- Autoscaler policy unit tests --------------------------------------------

TEST(Autoscaler, SizesCapacityFromLoadAndScalesUpImmediately) {
  FakeCapacity cap;
  double load = 350'000.0;  // ceil(3.5) = 4 workers
  control::Autoscaler as(fast_params(), [&] { return load; }, &cap);

  as.tick(sim::us(100));
  EXPECT_EQ(cap.active_now, 4u);
  EXPECT_EQ(as.scale_ups(), 1u);
  EXPECT_EQ(as.scale_downs(), 0u);
  ASSERT_EQ(as.history().size(), 1u);
  EXPECT_EQ(as.history()[0].from, 1u);
  EXPECT_EQ(as.history()[0].to, 4u);

  // Headroom multiplies the measured load before sizing.
  auto p = fast_params();
  p.headroom = 1.25;
  FakeCapacity cap2;
  control::Autoscaler as2(p, [&] { return load; }, &cap2);
  as2.tick(sim::us(100));
  EXPECT_EQ(cap2.active_now, 5u);  // ceil(350k * 1.25 / 100k) = 5
}

TEST(Autoscaler, ScaleDownCommitsOnlyAfterDwell) {
  FakeCapacity cap;
  cap.active_now = 6;
  double load = 100'000.0;  // wants 1 worker
  control::Autoscaler as(fast_params(), [&] { return load; }, &cap);

  as.tick(sim::us(100));  // arms the candidate, no commit
  EXPECT_EQ(cap.active_now, 6u);
  as.tick(sim::us(600));  // 500us into a 1ms dwell
  EXPECT_EQ(cap.active_now, 6u);
  EXPECT_EQ(as.scale_downs(), 0u);
  as.tick(sim::us(1200));  // dwell satisfied
  EXPECT_EQ(cap.active_now, 1u);
  EXPECT_EQ(as.scale_downs(), 1u);
}

TEST(Autoscaler, CooldownGatesBackToBackCommits) {
  auto p = fast_params();
  p.cooldown = sim::ms(1);
  FakeCapacity cap;
  double load = 200'000.0;
  control::Autoscaler as(p, [&] { return load; }, &cap);

  as.tick(sim::us(100));
  EXPECT_EQ(cap.active_now, 2u);
  load = 500'000.0;
  as.tick(sim::us(200));  // within cooldown of the first commit
  EXPECT_EQ(cap.active_now, 2u);
  as.tick(sim::us(1200));  // cooldown elapsed
  EXPECT_EQ(cap.active_now, 5u);
  EXPECT_EQ(as.scale_ups(), 2u);
}

TEST(Autoscaler, FlapGuardHoldsCapacityUnderSquareWave) {
  auto p = fast_params();
  p.down_dwell = sim::ms(1);
  FakeCapacity cap;
  sim::Time now = 0;
  // Square wave with 400us half-period: every dip ends before the 1ms
  // dwell can be satisfied, so capacity parks at the peak.
  const auto load = [&] {
    return (now / sim::us(400)) % 2 == 0 ? 600'000.0 : 0.0;
  };
  control::Autoscaler as(p, load, &cap);

  for (now = sim::us(100); now <= sim::ms(10); now += sim::us(100))
    as.tick(now);

  EXPECT_EQ(cap.active_now, 6u);
  EXPECT_EQ(as.scale_ups(), 1u);
  EXPECT_EQ(as.scale_downs(), 0u);
  EXPECT_EQ(as.history().size(), 1u);
}

TEST(Autoscaler, VetoedShrinkRetriesUntilAccepted) {
  auto p = fast_params();
  p.down_dwell = sim::us(100);
  FakeCapacity cap;
  cap.active_now = 6;
  cap.veto_next = 3;
  double load = 50'000.0;
  control::Autoscaler as(p, [&] { return load; }, &cap);

  sim::Time now = sim::us(100);
  as.tick(now);  // arms
  for (int i = 0; i < 4; ++i) {
    now += sim::us(100);
    as.tick(now);  // 3 vetoed attempts, then the commit
  }
  EXPECT_EQ(as.vetoes(), 3u);
  EXPECT_EQ(as.scale_downs(), 1u);
  EXPECT_EQ(cap.active_now, 1u);
}

TEST(Autoscaler, MaxWorkersCapsDesireBelowTargetLimit) {
  auto p = fast_params();
  p.max_workers = 3;
  FakeCapacity cap;
  double load = 900'000.0;  // would want 9; limit 8; cap 3
  control::Autoscaler as(p, [&] { return load; }, &cap);
  as.tick(sim::us(100));
  EXPECT_EQ(cap.active_now, 3u);
}

TEST(Autoscaler, CoreSecondsIntegrateActiveWorkersOverTime) {
  FakeCapacity cap;
  cap.active_now = 2;
  double load = 200'000.0;  // steady: wants exactly 2
  control::Autoscaler as(fast_params(), [&] { return load; }, &cap);

  as.tick(0);  // starts the integral
  as.tick(sim::ms(1));
  load = 400'000.0;
  as.tick(sim::ms(2));  // accounts 2 workers over [0,2ms], then commits 4
  as.finalize(sim::ms(3));  // accounts 4 workers over [2ms,3ms]
  EXPECT_NEAR(as.core_seconds(), 2 * 0.002 + 4 * 0.001, 1e-12);

  // finalize is idempotent; reset_accounting restarts the integral.
  as.finalize(sim::ms(3));
  EXPECT_NEAR(as.core_seconds(), 0.008, 1e-12);
  as.reset_accounting(sim::ms(3));
  as.finalize(sim::ms(4));
  EXPECT_NEAR(as.core_seconds(), 4 * 0.001, 1e-12);
}

// --- Controller x Autoscaler through one target ------------------------------

TEST(Autoscaler, RaisingCapacityLetsControllerWidenDegrees) {
  // One elephant at 600k pps against a budget of 1 active worker: the
  // Controller self-clamps to degree 1 (max_degree == active workers).
  // When the Autoscaler raises capacity, the next Controller tick widens
  // the same flow — no direct engine call anywhere, both through the one
  // CapacityTarget.
  FakeCapacity cap;
  std::uint64_t segs = 0;
  control::ControllerParams cp;  // 150k pps/core, 1ms window, 200us dwell
  control::Controller ctl(
      cp,
      [&] {
        return std::vector<control::Controller::FlowTotals>{
            {7, segs, segs * 1500}};
      },
      &cap);
  control::Autoscaler as(fast_params(), [&] { return 600'000.0; }, &cap);

  for (sim::Time t = sim::us(100); t <= sim::ms(2); t += sim::us(100)) {
    segs += 60;  // 600k pps
    ctl.tick(t);
  }
  ASSERT_FALSE(cap.degree_calls.empty());
  const std::uint32_t clamped = ctl.degree_of(7);
  EXPECT_EQ(clamped, 1u);  // promoted, but clamped to the active budget

  as.tick(sim::ms(2));  // raises capacity to 6
  EXPECT_EQ(cap.active_now, 6u);
  for (sim::Time t = sim::ms(2) + sim::us(100); t <= sim::ms(4);
       t += sim::us(100)) {
    segs += 60;
    ctl.tick(t);
  }
  EXPECT_GT(ctl.degree_of(7), clamped);
  EXPECT_EQ(ctl.degree_of(7), 4u);  // 600k / 150k per-core
}

// --- DES elastic scenario, end to end ----------------------------------------

namespace {

/// Elastic DES scenario: 3 TCP flows on the 8-core receiver with 4
/// splitting cores; cold start at 1 worker. Flows 1-2 are mice from t=0;
/// flow 0 runs as a saturating elephant until 6ms, then throttles to
/// mouse pace — capacity has to grow for the elephant and shrink after
/// the throttle collapses the aggregate load.
exp::ScenarioConfig elastic_des_config() {
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  return exp::ScenarioBuilder(exp::Mode::kMflow)
      .tcp(3)
      .message_size(65536)
      .layout(8, 1, 1, 7)
      .windows(sim::ms(2), sim::ms(10))
      .mflow(mcfg)
      .control([](auto& c) {
        c.interval = sim::us(100);
        c.params.monitor.window = sim::ms(1);
        c.params.classifier.promote_pps = 200'000.0;
        c.params.classifier.demote_pps = 100'000.0;
        c.params.classifier.dwell = sim::us(300);
      })
      .elastic([](auto& e) {
        e.interval = sim::us(100);
        e.params.per_worker_pps = 150'000.0;
        e.params.headroom = 1.2;
        e.params.cooldown = sim::us(200);
        e.params.down_dwell = sim::us(400);
      })
      .rate_change(1, 0, sim::ms(2))
      .rate_change(2, 0, sim::ms(2))
      .rate_change(0, sim::ms(6), sim::ms(2))
      .build();
}

}  // namespace

TEST(ElasticScenario, ScalesUpForElephantAndDownAfterThrottle) {
  const auto r = exp::run_scenario(elastic_des_config());
  EXPECT_GT(r.goodput_gbps, 0.5);
  EXPECT_GE(r.elastic.scale_ups, 1u);
  EXPECT_GE(r.elastic.scale_downs, 1u);
  EXPECT_GT(r.elastic.workers_high, r.elastic.workers_low);
  EXPECT_GE(r.elastic.workers_low, 1u);
  // Elasticity saved core-seconds against the static 4-worker run.
  EXPECT_GT(r.elastic.core_seconds, 0.0);
  EXPECT_LT(r.elastic.core_seconds, r.elastic.core_seconds_static);
  // Conservation through every capacity change: nothing written off,
  // nothing delivered out of order, nothing dropped.
  EXPECT_EQ(r.drops_recovered, 0u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.late_deliveries, 0u);
  EXPECT_EQ(r.nic_drops, 0u);
}

// --- MflowCapacityAdapter against a real DES engine --------------------------

namespace {

/// Minimal machine + engine rig (the test_splitter pattern): one UDP flow
/// into an 8-core receiver with 4 splitting cores.
struct AdapterRig {
  sim::Simulator sim{1};
  stack::Machine machine;
  std::unique_ptr<core::MflowEngine> engine;

  AdapterRig() : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    machine.add_socket(5000, sc);
    machine.start();

    core::MflowConfig cfg = core::udp_device_scaling_config();
    cfg.batch_size = 16;
    cfg.splitting_cores = {2, 3, 4, 5};
    engine = std::make_unique<core::MflowEngine>(machine, cfg);
    engine->attach_socket(5000, machine.socket(5000));
    engine->install();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 8;
    return mp;
  }

  void deliver(int n) {
    for (int i = 0; i < n; ++i) {
      auto p = net::make_udp_datagram(
          net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                       net::Ipv4Addr(10, 0, 1, 3), 41000, 5000,
                       net::Ipv4Header::kProtoUdp},
          1000);
      p->flow_id = 1;
      p->message_id = static_cast<std::uint64_t>(i);
      p->message_bytes = 1000;
      net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
      machine.nic().deliver(std::move(p), sim.now());
    }
  }
};

}  // namespace

TEST(MflowCapacityAdapter, ShrinkDuringSplitFlowDrainVetoesThenCommits) {
  AdapterRig rig;
  core::MflowCapacityAdapter adapter(*rig.engine);
  EXPECT_EQ(adapter.worker_limit(), 4u);
  EXPECT_EQ(adapter.active_workers(), 4u);

  // Split flow 1 across all 4 lanes and stop the simulation mid-drain:
  // batches dispatched to the splitting cores but not yet consumed.
  adapter.set_flow_degree(1, 4);
  rig.deliver(64);
  sim::Time t = 0;
  while (rig.engine->drained() && t < sim::ms(5)) {
    t += sim::us(1);
    rig.sim.run_until(t);
  }
  ASSERT_FALSE(rig.engine->drained());

  // Shrink to 1 worker mid-drain: the adapter demotes the over-budget
  // flow but must veto the commit — the retiring lanes still hold
  // in-flight batches. The budget is untouched by a veto.
  EXPECT_FALSE(adapter.set_active_workers(1));
  EXPECT_EQ(adapter.active_workers(), 4u);
  EXPECT_EQ(adapter.max_degree(), 4u);

  // Once the drain completes, the same request commits, and the degree
  // budget the Controller sees shrinks with it.
  rig.sim.run();
  ASSERT_TRUE(rig.engine->drained());
  EXPECT_TRUE(adapter.set_active_workers(1));
  EXPECT_EQ(adapter.active_workers(), 1u);
  EXPECT_EQ(adapter.max_degree(), 1u);
}

TEST(MflowCapacityAdapter, GrowthCommitsImmediatelyAndClampsDegrees) {
  AdapterRig rig;
  core::MflowCapacityAdapter adapter(*rig.engine, /*initial_workers=*/1);
  EXPECT_EQ(adapter.active_workers(), 1u);
  EXPECT_EQ(adapter.max_degree(), 1u);
  // Degree requests clamp to the active budget, not the physical limit.
  adapter.set_flow_degree(1, 4);
  rig.deliver(32);
  rig.sim.run();
  // Growth needs no drain: it commits even with traffic history present.
  EXPECT_TRUE(adapter.set_active_workers(4));
  EXPECT_EQ(adapter.max_degree(), 4u);
}

TEST(ElasticScenario, Deterministic) {
  const auto a = exp::run_scenario(elastic_des_config());
  const auto b = exp::run_scenario(elastic_des_config());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.elastic.scale_ups, b.elastic.scale_ups);
  EXPECT_EQ(a.elastic.scale_downs, b.elastic.scale_downs);
  EXPECT_EQ(a.elastic.vetoes, b.elastic.vetoes);
  EXPECT_EQ(a.elastic.core_seconds, b.elastic.core_seconds);
  ASSERT_EQ(a.elastic.history.size(), b.elastic.history.size());
  for (std::size_t i = 0; i < a.elastic.history.size(); ++i) {
    EXPECT_EQ(a.elastic.history[i].at, b.elastic.history[i].at);
    EXPECT_EQ(a.elastic.history[i].to, b.elastic.history[i].to);
  }
}

TEST(ElasticScenario, BuilderRejectsElasticWithoutControl) {
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3};
  auto b = exp::ScenarioBuilder(exp::Mode::kMflow)
               .tcp(2)
               .message_size(65536)
               .layout(8, 1, 1, 7)
               .windows(sim::ms(1), sim::ms(2))
               .mflow(mcfg)
               .elastic();  // no .control(): nothing to read load from
  EXPECT_THROW(b.build(), std::invalid_argument);
  EXPECT_NO_THROW(b.control().build());
}

// --- rt live capacity channel ------------------------------------------------

TEST(RtCapacity, PreRunRequestAppliesAtFirstBatchBoundary) {
  rt::EngineConfig cfg;
  cfg.workers = 4;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  rt::Engine eng(cfg);
  rt::EngineCapacityAdapter adapter(eng);
  EXPECT_EQ(adapter.worker_limit(), 4u);
  // Posted before run(): the generator sees it at the very first batch
  // boundary, so the whole stream runs on 2 workers — deterministic.
  EXPECT_TRUE(adapter.set_active_workers(2));
  const rt::EngineResult res = eng.run(20'000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 20'000u);
  EXPECT_EQ(res.active_workers_final, 2u);
  EXPECT_EQ(adapter.active_workers(), 2u);
  EXPECT_GE(res.rescales_applied, 1u);
}

TEST(RtCapacity, AdapterClampsAndReducesDegreeToCapacity) {
  rt::EngineConfig cfg;
  cfg.workers = 4;
  rt::Engine eng(cfg);
  rt::EngineCapacityAdapter adapter(eng);
  // Requests clamp to [1, worker_limit]; the rt single-stream reduction
  // maps a degree-d retarget onto d active workers.
  adapter.set_active_workers(99);
  EXPECT_EQ(eng.capacity().requested.load(), 4u);
  adapter.set_flow_degree(net::FlowId{1}, 3);
  EXPECT_EQ(eng.capacity().requested.load(), 3u);
  adapter.set_flow_degree(net::FlowId{1}, 0);  // degree 0 still needs 1 lane
  EXPECT_EQ(eng.capacity().requested.load(), 1u);
}

TEST(RtCapacity, ScaleUpOnTooSmallHostDegradesToUnpinned) {
  // More workers than the host has CPUs: plan_cores() reports the host too
  // small, so pinning must degrade to an unpinned plan — and a live
  // scale-up mid-run must still complete correctly.
  const std::uint32_t workers =
      std::max(1u, std::thread::hardware_concurrency()) + 2;
  rt::EngineConfig cfg;
  cfg.workers = workers;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 50;
  cfg.topology.pin_threads = true;
  cfg.rescales.push_back({0, 1});  // start the stream on one lane
  rt::Engine eng(cfg);
  rt::EngineCapacityAdapter adapter(eng);

  rt::EngineResult res;
  std::thread runner([&] { res = eng.run(200'000); });
  // Live scale-up to the full (unpinnable) worker count while running.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  adapter.set_active_workers(workers);
  runner.join();

  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 200'000u);
  EXPECT_EQ(res.threads_pinned, 0u);  // degraded, did not fail
  EXPECT_GE(res.rescales_applied, 1u);  // at least the schedule's shrink
  EXPECT_GE(res.active_workers_final, 1u);
  EXPECT_LE(res.active_workers_final, workers);
}
