// Real-thread engine: lock-free rings, calibration, and the system-level
// invariant that split/process/merge with REAL threads preserves order for
// any worker count and batch size.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "rt/calibrate.hpp"
#include "rt/engine.hpp"
#include "rt/spsc_ring.hpp"
#include "util/rng.hpp"

using namespace mflow::rt;

TEST(SpscRing, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, PeekDoesNotConsume) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.peek(), nullptr);
  ring.try_push(42);
  ASSERT_NE(ring.peek(), nullptr);
  EXPECT_EQ(*ring.peek(), 42);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(*ring.try_pop(), 42);
}

TEST(SpscRing, WrapsManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_EQ(*ring.try_pop(), i);
  }
}

TEST(SpscRing, TwoThreadsTransferEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 200000;
  std::jthread producer([&] {
    for (std::uint64_t i = 0; i < kN; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });
  std::uint64_t expected = 0;
  while (expected < kN) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
}

TEST(SpscRing, NonPowerOfTwoCapacityThrows) {
  // A bad mask silently corrupts data, so the check must be a hard error in
  // every build type, not an assert.
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(3), std::invalid_argument);
  EXPECT_THROW(SpscRing<int>(1000), std::invalid_argument);
  EXPECT_NO_THROW(SpscRing<int>(1));
  EXPECT_NO_THROW(SpscRing<int>(1024));
}

TEST(SpscRing, FailedRvaluePushLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto keep = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(keep)));
  // The contract move-only packet handles rely on: a rejected push must not
  // have consumed the value.
  ASSERT_NE(keep, nullptr);
  EXPECT_EQ(*keep, 3);
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(std::move(keep)));
  EXPECT_EQ(keep, nullptr);
}

// Property test: a randomized interleaving of scalar and batch operations
// must behave exactly like a plain deque of the same values.
TEST(SpscRing, BatchOpsMatchScalarModel) {
  mflow::util::Rng rng(0xbadc);
  SpscRing<std::uint64_t> ring(64);
  std::deque<std::uint64_t> model;
  std::uint64_t next = 0;
  std::array<std::uint64_t, 97> buf;
  for (int step = 0; step < 20000; ++step) {
    switch (rng.uniform(4)) {
      case 0: {  // scalar push
        const bool had_space = model.size() < 64u;
        const bool ok = ring.try_push(next);
        EXPECT_EQ(ok, had_space);
        if (ok) model.push_back(next++);
        break;
      }
      case 1: {  // scalar pop
        auto v = ring.try_pop();
        ASSERT_EQ(v.has_value(), !model.empty());
        if (v) {
          EXPECT_EQ(*v, model.front());
          model.pop_front();
        }
        break;
      }
      case 2: {  // batch push of random size (may exceed free space)
        const std::size_t want = 1 + rng.uniform(buf.size());
        for (std::size_t i = 0; i < want; ++i) buf[i] = next + i;
        const std::size_t pushed = ring.try_push_batch(buf.data(), want);
        EXPECT_EQ(pushed, std::min<std::size_t>(want, 64 - model.size()));
        for (std::size_t i = 0; i < pushed; ++i) model.push_back(next + i);
        next += pushed;
        break;
      }
      default: {  // batch pop of random size
        const std::size_t want = 1 + rng.uniform(buf.size());
        const std::size_t popped = ring.try_pop_batch(buf.data(), want);
        EXPECT_EQ(popped, std::min(want, model.size()));
        for (std::size_t i = 0; i < popped; ++i) {
          EXPECT_EQ(buf[i], model.front());
          model.pop_front();
        }
        break;
      }
    }
  }
}

TEST(SpscRing, BatchCrossThreadTransferEverythingInOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 200000;
  std::jthread producer([&] {
    std::array<std::uint64_t, 24> chunk;
    std::uint64_t sent = 0;
    while (sent < kN) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk.size(), kN - sent));
      for (std::size_t i = 0; i < want; ++i) chunk[i] = sent + i;
      std::size_t done = 0;
      while (done < want) {
        const std::size_t k = ring.try_push_batch(chunk.data() + done,
                                                  want - done);
        done += k;
        if (k == 0) std::this_thread::yield();
      }
      sent += want;
    }
  });
  std::array<std::uint64_t, 17> out;
  std::uint64_t expected = 0;
  while (expected < kN) {
    const std::size_t k = ring.try_pop_batch(out.data(), out.size());
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) ASSERT_EQ(out[i], expected++);
  }
}

TEST(Calibrate, RatePositiveAndStable) {
  const double a = spin_iters_per_ns();
  const double b = spin_iters_per_ns();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // memoized
}

TEST(RtReassembler, MergesRoundRobinBatches) {
  RtReassembler ra(2, 64);
  // Batch 1 -> worker 0, batch 2 -> worker 1, batch 3 -> worker 0.
  ASSERT_TRUE(ra.deposit(1, RtPacket{2, 2, 0, false}));  // batch 2 first
  ASSERT_TRUE(ra.deposit(0, RtPacket{0, 1, 0, false}));
  ASSERT_TRUE(ra.deposit(0, RtPacket{1, 1, 0, false}));
  ASSERT_TRUE(ra.deposit(0, RtPacket{3, 3, 0, false}));
  std::vector<std::uint64_t> seqs;
  while (auto p = ra.pop_ready()) seqs.push_back(p->seq);
  // Batch 2's ring is dry and no later batch proves it complete — that is
  // only knowable at end of stream, where the engine force-advances.
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
  ra.force_advance();
  while (auto p = ra.pop_ready()) seqs.push_back(p->seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(ra.batches_merged(), 2u);
}

struct RtSweep {
  std::size_t workers;
  std::uint32_t batch;
  std::uint64_t packets;
};

class RtEngineSweep : public ::testing::TestWithParam<RtSweep> {};

TEST_P(RtEngineSweep, InOrderAndLossless) {
  const auto p = GetParam();
  EngineConfig cfg;
  cfg.workers = p.workers;
  cfg.batch_size = p.batch;
  cfg.cost_ns_per_packet = 50;  // keep the test fast
  Engine engine(cfg);
  std::uint64_t observed = 0;
  const auto res = engine.run(p.packets, [&](const RtPacket& pkt) {
    EXPECT_EQ(pkt.seq, observed);
    ++observed;
  });
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, p.packets);
  EXPECT_EQ(observed, p.packets);
  EXPECT_GT(res.packets_per_second(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtEngineSweep,
    ::testing::Values(RtSweep{1, 256, 5000}, RtSweep{2, 1, 5000},
                      RtSweep{2, 7, 5000}, RtSweep{2, 256, 20000},
                      RtSweep{3, 64, 20000}, RtSweep{4, 256, 20000},
                      RtSweep{4, 1024, 3000},  // partial final batch
                      RtSweep{2, 4096, 1000}   // single huge batch
                      ));

TEST(RtReassembler, DepositRetryBudgetBoundsTheSpin) {
  RtReassembler ra(1, 4);
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(ra.deposit(0, RtPacket{i, 1, 0, false}));
  // Ring full and the consumer never runs: a bounded deposit must give up
  // instead of yielding forever.
  EXPECT_FALSE(ra.deposit(0, RtPacket{4, 1, 0, false}, /*max_spins=*/8));
  // Consuming one slot makes the same deposit succeed.
  ASSERT_TRUE(ra.pop_ready().has_value());
  EXPECT_TRUE(ra.deposit(0, RtPacket{4, 1, 0, false}, /*max_spins=*/8));
}

TEST(RtEngine, InjectedDropsRecoverWithoutWedging) {
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.fault_drop_rate = 0.02;
  cfg.fault_seed = 42;
  constexpr std::uint64_t kTotal = 50000;
  std::uint64_t last_seq = 0;
  bool first = true;
  std::uint64_t observed = 0;
  const auto res = Engine(cfg).run(kTotal, [&](const RtPacket& pkt) {
    if (!first) {
      EXPECT_GT(pkt.seq, last_seq);
    }
    last_seq = pkt.seq;
    first = false;
    ++observed;
  });
  // ~2% of 50k packets vanish mid-pipeline; the merge must neither deliver
  // survivors out of order nor hang waiting for the holes.
  EXPECT_GT(res.packets_dropped, 0u);
  EXPECT_EQ(res.packets + res.packets_dropped, kTotal);
  EXPECT_EQ(observed, res.packets);
  EXPECT_TRUE(res.in_order);
}

TEST(RtEngine, TinyRingWithBoundedRetryDegradesInsteadOfSpinning) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 8;
  cfg.ring_capacity = 8;
  cfg.cost_ns_per_packet = 2000;  // workers slower than the generator
  cfg.max_push_spins = 4;        // almost no patience
  const auto res = Engine(cfg).run(20000);
  // Conservation and survivor ordering hold whether or not backpressure
  // actually triggered on this host.
  EXPECT_EQ(res.packets + res.packets_dropped, 20000u);
  EXPECT_TRUE(res.in_order);
}

TEST(RtEngine, ZeroCostStillOrdered) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  const auto res = Engine(cfg).run(50000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 50000u);
}

// Live rescale under real concurrency: the stream shrinks to one worker and
// grows back mid-run via epoch messages, with old-epoch batches draining
// under the old mapping while new ones fill under the new. Ordering and
// conservation must hold through both transitions.
TEST(RtEngine, RuntimeRescaleShrinkAndGrowStaysOrdered) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;  // lossless: conservation is exact
  cfg.rescales = {{10000, 1}, {25000, 3}};
  constexpr std::uint64_t kTotal = 40000;
  std::uint64_t observed = 0;
  const auto res = Engine(cfg).run(kTotal, [&](const RtPacket& pkt) {
    EXPECT_EQ(pkt.seq, observed);
    ++observed;
  });
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, kTotal);
  EXPECT_EQ(res.packets_dropped, 0u);
  EXPECT_EQ(observed, kTotal);
  EXPECT_EQ(res.rescales_applied, 2u);
}

// Same-degree rescale entries coalesce to no epoch at all.
TEST(RtEngine, NoOpRescaleAnnouncesNothing) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.rescales = {{500, 2}};  // already at 2 workers
  const auto res = Engine(cfg).run(2000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.rescales_applied, 0u);
}

// Rescaling while packets are being injected-dropped: the drain protocol
// must not double-count or wedge when holes land near epoch boundaries.
TEST(RtEngine, RescaleUnderFaultsConservesSurvivors) {
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.fault_drop_rate = 0.02;
  cfg.fault_seed = 7;
  cfg.rescales = {{8000, 1}, {16000, 3}, {24000, 2}};
  constexpr std::uint64_t kTotal = 32000;
  const auto res = Engine(cfg).run(kTotal);
  EXPECT_GT(res.packets_dropped, 0u);
  EXPECT_EQ(res.packets + res.packets_dropped, kTotal);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.rescales_applied, 3u);
}

// Flow-state churn tracking: the shared control::FlowTable driven on the
// batch-index clock. Peak occupancy must follow the live window (ttl /
// flow lifetime), not cumulative flows, and — because worker touches
// replay a flow's own batch number, which monotone touch turns into
// no-ops against the generator's stamps — the telemetry must be
// bit-identical across runs despite real threads.
TEST(RtEngine, FlowTableChurnBoundedAndDeterministic) {
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;
  cfg.flow_table.enabled = true;
  cfg.flow_table.capacity = 1 << 10;
  cfg.flow_table.ttl_batches = 64;
  cfg.flow_table.sweep_every = 16;
  cfg.flow_table.flow_lifetime_batches = 4;
  constexpr std::uint64_t kTotal = 80000;  // 5000 batches, ~1250 flows
  const auto a = Engine(cfg).run(kTotal);
  EXPECT_TRUE(a.in_order);
  EXPECT_EQ(a.packets, kTotal);
  EXPECT_GT(a.flow_table.expired, 1000u);
  EXPECT_LE(a.flow_table.peak, 64u);  // live window ~ ttl/lifetime + 1 = 17
  EXPECT_LE(a.flow_table.live, a.flow_table.peak);
  const auto b = Engine(cfg).run(kTotal);
  EXPECT_EQ(b.flow_table.peak, a.flow_table.peak);
  EXPECT_EQ(b.flow_table.expired, a.flow_table.expired);
  EXPECT_EQ(b.flow_table.live, a.flow_table.live);
}

// Overlay mode keeps its batch % flows identity: every flow is re-touched
// well inside the TTL, so the table settles at exactly the flow count and
// nothing ever expires.
TEST(RtEngine, FlowTableOverlayHotSetNeverExpires) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 16;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;
  cfg.overlay.enabled = true;
  cfg.overlay.flows = 8;
  cfg.flow_table.enabled = true;
  cfg.flow_table.ttl_batches = 32;
  cfg.flow_table.sweep_every = 8;
  const auto res = Engine(cfg).run(20000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 20000u);
  EXPECT_EQ(res.flow_table.peak, 8u);
  EXPECT_EQ(res.flow_table.live, 8u);
  EXPECT_EQ(res.flow_table.expired, 0u);
}
