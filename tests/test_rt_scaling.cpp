// Tests for the rt scaling stack: topology discovery + core planning
// (rt/topology.hpp), the scalability profiler and its attribution model
// (rt/profiler.hpp), the SpscRing batched-path contracts the fan-in
// fabric depends on, and cross-thread ordering/conservation of the
// per-worker fan-in merge at several widths (with live rescales and
// injected faults). Everything here must be green under asan-ubsan AND
// tsan — the fan-in properties are exactly the ones a data race would
// corrupt first.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/engine.hpp"
#include "rt/profiler.hpp"
#include "rt/spsc_ring.hpp"
#include "rt/topology.hpp"

using namespace mflow;
using namespace mflow::rt;

namespace {

// ---------------------------------------------------------------- cpulist

TEST(ParseCpulist, RangesSinglesAndJunk) {
  EXPECT_EQ(parse_cpulist("0-3,5,7-8"),
            (std::vector<int>{0, 1, 2, 3, 5, 7, 8}));
  EXPECT_EQ(parse_cpulist("4"), (std::vector<int>{4}));
  EXPECT_EQ(parse_cpulist("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_TRUE(parse_cpulist("").empty());
  // Malformed chunks are skipped, valid ones kept; duplicates collapse.
  EXPECT_EQ(parse_cpulist("x,2,2,1-x,3"), (std::vector<int>{2, 3}));
}

// ----------------------------------------------------------- fake sysfs

/// Writes a fake sysfs topology tree: `pairs` physical cores, two logical
/// CPUs each (SMT), split across `nodes` NUMA nodes. Layout mirrors the
/// kernel's: cpu i and cpu i+pairs are siblings of core i.
class FakeSysfs {
 public:
  FakeSysfs(int pairs, int nodes) {
    root_ = std::filesystem::temp_directory_path() /
            ("mflow_sysfs_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    const int total = 2 * pairs;
    const auto cpu_dir = root_ / "devices/system/cpu";
    std::filesystem::create_directories(cpu_dir);
    write(cpu_dir / "online", "0-" + std::to_string(total - 1) + "\n");
    for (int c = 0; c < total; ++c) {
      const auto topo = cpu_dir / ("cpu" + std::to_string(c)) / "topology";
      std::filesystem::create_directories(topo);
      write(topo / "core_id", std::to_string(c % pairs) + "\n");
      write(topo / "physical_package_id", "0\n");
    }
    for (int n = 0; n < nodes; ++n) {
      const auto node_dir =
          root_ / "devices/system/node" / ("node" + std::to_string(n));
      std::filesystem::create_directories(node_dir);
      // Split the core pairs evenly across nodes, keeping siblings
      // together: node n owns cores [n*pairs/nodes, (n+1)*pairs/nodes).
      const int lo = n * pairs / nodes, hi = (n + 1) * pairs / nodes;
      std::string list;
      for (int core = lo; core < hi; ++core) {
        if (!list.empty()) list += ",";
        list += std::to_string(core) + "," + std::to_string(core + pairs);
      }
      write(node_dir / "cpulist", list + "\n");
    }
  }
  ~FakeSysfs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  std::string root() const { return root_.string(); }

 private:
  static void write(const std::filesystem::path& p, const std::string& s) {
    std::ofstream(p) << s;
  }
  std::filesystem::path root_;
  static inline int counter_ = 0;
};

TEST(CpuTopologyTest, DiscoversFakeTree) {
  FakeSysfs fs(/*pairs=*/4, /*nodes=*/2);  // 8 logical CPUs
  const CpuTopology topo = CpuTopology::discover(fs.root());
  ASSERT_EQ(topo.size(), 8u);
  EXPECT_EQ(topo.cpus[0].cpu, 0);
  EXPECT_EQ(topo.cpus[0].core_id, 0);
  EXPECT_EQ(topo.cpus[4].core_id, 0);  // SMT sibling of cpu 0
  EXPECT_EQ(topo.cpus[0].numa_node, 0);
  EXPECT_EQ(topo.cpus[3].numa_node, 1);  // core 3 lives on node 1
  EXPECT_EQ(topo.cpus[7].numa_node, 1);
}

TEST(CpuTopologyTest, MissingSysfsSynthesizesIndependentCores) {
  const CpuTopology topo = CpuTopology::discover("/nonexistent-sysfs-root");
  ASSERT_EQ(topo.size(),
            std::max(1u, std::thread::hardware_concurrency()));
  for (const auto& c : topo.cpus) {
    EXPECT_EQ(c.core_id, c.cpu);  // independent cores, one node
    EXPECT_EQ(c.numa_node, 0);
  }
}

// ------------------------------------------------------------ plan_cores

/// core_id of a logical cpu in `topo`, -1 if unknown.
int core_of(const CpuTopology& topo, int cpu) {
  for (const auto& c : topo.cpus)
    if (c.cpu == cpu) return c.core_id;
  return -1;
}
int node_of(const CpuTopology& topo, int cpu) {
  for (const auto& c : topo.cpus)
    if (c.cpu == cpu) return c.numa_node;
  return -1;
}

TEST(PlanCoresTest, WorkersOnDistinctPhysicalCoresFirst) {
  FakeSysfs fs(/*pairs=*/4, /*nodes=*/1);  // 4 cores x 2 SMT = 8 CPUs
  const CpuTopology topo = CpuTopology::discover(fs.root());
  const CorePlan plan = plan_cores(topo, /*workers=*/3);
  ASSERT_EQ(plan.workers.size(), 3u);
  std::vector<int> cores;
  for (int cpu : plan.workers) {
    ASSERT_GE(cpu, 0);
    cores.push_back(core_of(topo, cpu));
  }
  std::sort(cores.begin(), cores.end());
  EXPECT_EQ(std::unique(cores.begin(), cores.end()), cores.end())
      << "two workers share a physical core while cores are spare";
  // Generator + consumer co-located on the SMT siblings of the one spare
  // physical core.
  ASSERT_GE(plan.generator, 0);
  ASSERT_GE(plan.consumer, 0);
  EXPECT_NE(plan.generator, plan.consumer);
  EXPECT_EQ(core_of(topo, plan.generator), core_of(topo, plan.consumer));
}

TEST(PlanCoresTest, UnpinnedWhenHostTooSmall) {
  FakeSysfs fs(/*pairs=*/2, /*nodes=*/1);  // 4 logical CPUs
  const CpuTopology topo = CpuTopology::discover(fs.root());
  // 4 workers + generator + consumer = 6 threads > 4 CPUs: pinning would
  // serialize the pipeline behind the scheduler.
  EXPECT_FALSE(plan_cores(topo, 4).any());
  // 2 workers + 2 = 4 threads fits exactly.
  EXPECT_TRUE(plan_cores(topo, 2).any());
}

TEST(PlanCoresTest, StaysOnHomeNumaNode) {
  FakeSysfs fs(/*pairs=*/4, /*nodes=*/2);  // 2 cores x 2 SMT per node
  const CpuTopology topo = CpuTopology::discover(fs.root());
  const CorePlan plan = plan_cores(topo, /*workers=*/2);
  ASSERT_TRUE(plan.any());
  const int home = node_of(topo, plan.workers[0]);
  for (int cpu : plan.workers) EXPECT_EQ(node_of(topo, cpu), home);
  EXPECT_EQ(node_of(topo, plan.generator), home);
  EXPECT_EQ(node_of(topo, plan.consumer), home);
}

TEST(PinThreadTest, PinAndRestore) {
  EXPECT_FALSE(pin_current_thread(-1));
#if defined(__linux__)
  // CPU 0 exists on any host this test runs on.
  EXPECT_TRUE(pin_current_thread(0));
  EXPECT_TRUE(unpin_current_thread());
#endif
}

// ------------------------------------------------------------- profiler

TEST(StallClockTest, EpisodeAccounting) {
  StallClock clock;
  std::uint64_t episodes = 0, ns = 0;
  clock.resolve(episodes, ns);  // not armed: no-op
  EXPECT_EQ(episodes, 0u);
  clock.stall();
  EXPECT_TRUE(clock.armed());
  clock.stall();  // re-arming while armed is free and keeps t0
  clock.resolve(episodes, ns);
  EXPECT_EQ(episodes, 1u);
  EXPECT_FALSE(clock.armed());
  clock.stall();
  clock.resolve(episodes, ns);
  EXPECT_EQ(episodes, 2u);
}

/// Build a worker block: `items` processed over `busy_ns` of busy time,
/// plus the given stalls (active = busy + stalls).
StageCounters make_worker(std::uint64_t items, std::uint64_t busy_ns,
                          std::uint64_t dry_ns, std::uint64_t full_ns) {
  StageCounters c;
  c.items = items;
  c.input_dry_ns = dry_ns;
  c.output_full_ns = full_ns;
  c.active_ns = busy_ns + dry_ns + full_ns;
  return c;
}

TEST(AttributionTest, StallsExplainLossExactly) {
  // Two workers at exactly the anchor rate (1 pkt per 100 ns), each
  // stalled half the run: ideal = 2 x anchor, measured = half of that,
  // and the named points must explain the entire gap.
  ProfileReport rep;
  rep.enabled = true;
  rep.workers = 2;
  rep.wall_seconds = 1.0;
  const std::uint64_t ns = 1'000'000'000;
  rep.worker.push_back(make_worker(ns / 200, ns / 2, ns / 2, 0));
  rep.worker.push_back(make_worker(ns / 200, ns / 2, 0, ns / 2));
  const double anchor = 1e9 / 100.0;  // 1-worker rate, pkts/s
  const double measured = 2.0 * (ns / 200) / 1.0;
  const ScalingAttribution attr = attribute_scaling(rep, anchor, measured);
  EXPECT_DOUBLE_EQ(attr.ideal_pps, 2.0 * anchor);
  EXPECT_NEAR(attr.lost_pps, anchor, 1.0);
  EXPECT_NEAR(attr.coverage, 1.0, 1e-6);
  ASSERT_EQ(attr.points.size(), 3u);
  // Sorted by lost_pps: starved and backpressured each explain half.
  EXPECT_NEAR(attr.points[0].lost_pps, anchor / 2, 1.0);
  EXPECT_NEAR(attr.points[1].lost_pps, anchor / 2, 1.0);
  EXPECT_DOUBLE_EQ(attr.points[2].lost_pps, 0.0);
}

TEST(AttributionTest, SlowdownResidualCatchesUnstallLoss) {
  // One worker, never stalled, but running at half the anchor rate
  // (cache/SMT contention): no stall point fires, so the slowdown
  // residual must carry the whole loss.
  ProfileReport rep;
  rep.enabled = true;
  rep.workers = 1;
  rep.wall_seconds = 1.0;
  const std::uint64_t ns = 1'000'000'000;
  rep.worker.push_back(make_worker(ns / 200, ns, 0, 0));  // 1 per 200ns
  const double anchor = 1e9 / 100.0;                      // 1 per 100ns
  const double measured = static_cast<double>(ns / 200);
  const ScalingAttribution attr = attribute_scaling(rep, anchor, measured);
  EXPECT_NEAR(attr.coverage, 1.0, 1e-6);
  EXPECT_NE(attr.points[0].name.find("slowdown"), std::string::npos);
  EXPECT_NEAR(attr.points[0].share, 1.0, 1e-6);
}

TEST(AttributionTest, DisabledReportYieldsEmpty) {
  const ScalingAttribution attr = attribute_scaling({}, 1e6, 5e5);
  EXPECT_TRUE(attr.points.empty());
  EXPECT_EQ(attr.ideal_pps, 0.0);
}

// ----------------------------------------------- SpscRing batched paths

TEST(SpscRingBatch, ZeroCountOpsAreNoOps) {
  SpscRing<int> ring(8);
  int buf[4] = {1, 2, 3, 4};
  // Zero-size push/pop must not publish a no-op index store (the fan-in
  // consumer polls these lines) and must not disturb ring state.
  EXPECT_EQ(ring.try_push_batch(buf, 0), 0u);
  EXPECT_EQ(ring.try_pop_batch(buf, 0), 0u);
  EXPECT_EQ(ring.try_push_batch(buf, 4), 4u);
  EXPECT_EQ(ring.try_pop_batch(buf, 0), 0u);
  int out[4] = {};
  EXPECT_EQ(ring.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out[3], 4);
}

TEST(SpscRingBatch, PopRefreshesCachedHeadOnShortfall) {
  // Regression guard for the batched-pop cached-index contract
  // (spsc_ring.hpp): once the producer's publication is visible through
  // ANY release/acquire chain, the consumer's FIRST try_pop_batch asking
  // for that many items must deliver them all — a stale cached head may
  // only ever under-report transiently, never after a synchronized
  // handoff.
  constexpr int kItems = 64;
  SpscRing<int> ring(128);
  std::atomic<bool> published{false};
  std::jthread producer([&] {
    int vals[kItems];
    for (int i = 0; i < kItems; ++i) vals[i] = i;
    ASSERT_EQ(ring.try_push_batch(vals, kItems),
              static_cast<std::size_t>(kItems));
    published.store(true, std::memory_order_release);
  });
  while (!published.load(std::memory_order_acquire))
    std::this_thread::yield();
  int out[kItems] = {};
  // The consumer's cached head still says "empty"; the shortfall must
  // force an acquire refresh that sees the whole published batch.
  EXPECT_EQ(ring.try_pop_batch(out, kItems),
            static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRingBatch, FanInConservationAcrossRings) {
  // N producers, one consumer draining all rings round-robin with
  // batched pops: every item arrives exactly once, in per-ring FIFO
  // order — the exact access pattern of the merge fabric and the
  // generator's drop-ring sweep.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  std::vector<std::unique_ptr<SpscRing<std::uint64_t>>> rings;
  for (std::size_t p = 0; p < kProducers; ++p)
    rings.push_back(std::make_unique<SpscRing<std::uint64_t>>(256));
  std::vector<std::jthread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t vals[32];
      std::uint64_t next = 0;
      while (next < kPerProducer) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(32, kPerProducer - next));
        for (std::size_t i = 0; i < want; ++i) vals[i] = next + i;
        std::size_t done = 0;
        while (done < want) {
          const std::size_t k =
              rings[p]->try_push_batch(vals + done, want - done);
          done += k;
          if (k == 0) std::this_thread::yield();
        }
        next += want;
      }
    });
  }
  std::vector<std::uint64_t> expected_next(kProducers, 0);
  std::uint64_t total = 0;
  std::uint64_t out[64];
  while (total < kProducers * kPerProducer) {
    bool progressed = false;
    for (std::size_t p = 0; p < kProducers; ++p) {
      const std::size_t k = rings[p]->try_pop_batch(out, 64);
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(out[i], expected_next[p]) << "FIFO violated on ring " << p;
        ++expected_next[p];
      }
      total += k;
      progressed = progressed || k > 0;
    }
    if (!progressed) std::this_thread::yield();
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
}

// ------------------------------------------- engine fan-in + profiler

TEST(RtScalingEngine, ProfilePopulatedAndConsistent) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  cfg.profile = true;
  const std::uint64_t total = 20'000;
  const EngineResult res = Engine(cfg).run(total);
  ASSERT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, total);
  ASSERT_TRUE(res.profile.enabled);
  ASSERT_EQ(res.profile.worker.size(), 2u);
  EXPECT_EQ(res.profile.generator.items, total);
  EXPECT_EQ(res.profile.consumer.items, total);
  EXPECT_EQ(res.profile.workers_total().items, total);
  for (const auto& w : res.profile.worker) EXPECT_GT(w.active_ns, 0u);
  // The formatter accepts any populated report.
  const std::string txt = format_profile(res.profile);
  EXPECT_NE(txt.find("generator"), std::string::npos);
  EXPECT_NE(txt.find("worker1"), std::string::npos);
}

TEST(RtScalingEngine, ProfileOffWritesNothing) {
  EngineConfig cfg;
  cfg.workers = 2;
  const EngineResult res = Engine(cfg).run(5'000);
  EXPECT_FALSE(res.profile.enabled);
  EXPECT_EQ(res.profile.worker.size(), 0u);
  EXPECT_EQ(res.profile.generator.items, 0u);
}

TEST(RtScalingEngine, FanInOrderAndConservationAcrossWidths) {
  // The tentpole property: at 2, 4 and 8 workers, with live rescales AND
  // injected faults, the fan-in merge still delivers survivors in strict
  // seq order and conserves every packet (delivered + dropped == total).
  for (std::size_t workers : {2u, 4u, 8u}) {
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.batch_size = 32;
    cfg.ring_capacity = 256;
    cfg.cost_ns_per_packet = 0;
    cfg.fault_drop_rate = 0.02;
    cfg.profile = true;
    cfg.rescales = {{8'000, 1}, {16'000, workers}};
    const std::uint64_t total = 30'000;
    std::uint64_t seen = 0;
    std::uint64_t last_seq = 0;
    bool order_ok = true;
    const EngineResult res =
        Engine(cfg).run(total, [&](const RtPacket& pkt) {
          if (seen > 0 && pkt.seq <= last_seq) order_ok = false;
          last_seq = pkt.seq;
          ++seen;
        });
    EXPECT_TRUE(order_ok) << "w=" << workers;
    EXPECT_TRUE(res.in_order) << "w=" << workers;
    EXPECT_EQ(res.packets, seen) << "w=" << workers;
    EXPECT_EQ(res.packets + res.packets_dropped, total) << "w=" << workers;
    EXPECT_EQ(res.rescales_applied, 2u) << "w=" << workers;
    EXPECT_EQ(res.profile.worker.size(), workers);
    // Faults fired, so the drop-return fan-in must have carried slabs.
    EXPECT_GT(res.packets_dropped, 0u) << "w=" << workers;
    EXPECT_GT(res.recycle_ring_returns, 0u) << "w=" << workers;
  }
}

TEST(RtScalingEngine, DropReturnRingsCarryFaultedSlabs) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.fault_drop_rate = 0.05;
  const std::uint64_t total = 40'000;
  const EngineResult res = Engine(cfg).run(total);
  EXPECT_TRUE(res.in_order);
  ASSERT_GT(res.packets_dropped, 0u);
  // Most dropped slabs should return through the per-worker rings — the
  // CAS free list is only the overflow fallback (plus the generator's
  // cold-start draws, which are counted as fallbacks by design).
  EXPECT_GT(res.recycle_ring_returns, res.packets_dropped / 2);
  // The pool never ran dry: the drop-return fabric kept slabs cycling.
  EXPECT_EQ(res.pool_exhausted, 0u);
}

TEST(RtScalingEngine, ExplicitTopologyOverridePins) {
  EngineConfig cfg;
  cfg.workers = 1;
  cfg.topology.pin_threads = true;
  // Explicit overrides bypass the "host too small" auto-plan: every
  // pipeline thread lands on CPU 0, which exists everywhere. Correctness
  // (not speed) is the claim on a 1-CPU host.
  cfg.topology.generator_cpu = 0;
  cfg.topology.consumer_cpu = 0;
  cfg.topology.worker_cpus = {0};
  const EngineResult res = Engine(cfg).run(5'000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 5'000u);
#if defined(__linux__)
  EXPECT_EQ(res.threads_pinned, 3u);
#endif
}

TEST(RtScalingEngine, AutoPlanNeverBreaksCorrectness) {
  // pin_threads with no overrides: whatever the host looks like (enough
  // cores -> pinned, too few -> unpinned plan), the run must stay correct.
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.topology.pin_threads = true;
  const EngineResult res = Engine(cfg).run(10'000);
  EXPECT_TRUE(res.in_order);
  EXPECT_EQ(res.packets, 10'000u);
}

}  // namespace
