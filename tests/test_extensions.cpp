// Extensions beyond the paper: parallel data-copy readers and the adaptive
// batch-size controller.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "experiment/scenario.hpp"

using namespace mflow;

TEST(ParallelCopy, ExtraReadersRaiseSingleFlowCeiling) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(12);
  cfg.costs.client_tcp_per_seg_overlay = 180;  // lift the client ceiling
  cfg.costs.client_per_msg = 800;
  cfg.mflow = core::tcp_full_path_config();

  const auto one = exp::run_scenario(cfg);
  cfg.extra_reader_cores = {6};
  const auto two = exp::run_scenario(cfg);

  EXPECT_GT(one.cores.at(0).total, 0.95);  // the paper's copy bottleneck
  EXPECT_GT(two.goodput_gbps, one.goodput_gbps * 1.3);
  // Both copy cores share the load in the 2-reader run.
  EXPECT_GT(two.cores.at(6).total, 0.3);
}

TEST(ParallelCopy, OrderingPreservedWithTwoReaders) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 16384;
  cfg.warmup = sim::ms(3);
  cfg.measure = sim::ms(8);
  cfg.extra_reader_cores = {6, 7};
  const auto res = exp::run_scenario(cfg);
  // Message accounting only advances on in-order byte arrival; completions
  // matching goodput proves no gaps or reordering survived.
  const double expected =
      res.goodput_gbps * 1e9 / 8 / 16384 * sim::to_seconds(sim::ms(8));
  EXPECT_NEAR(static_cast<double>(res.messages), expected, expected * 0.05);
}

TEST(AdaptiveBatch, GrowsAwayFromReorderingBatch) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(30);
  auto mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.batch_size = 8;  // deliberately reorder-prone
  cfg.mflow = mcfg;

  cfg.adaptive_batch = false;
  const auto fixed = exp::run_scenario(cfg);
  cfg.adaptive_batch = true;
  const auto adaptive = exp::run_scenario(cfg);

  EXPECT_GT(fixed.ooo_arrivals, 500u);
  EXPECT_GT(adaptive.final_batch, 8u);          // it moved
  EXPECT_LT(adaptive.ooo_arrivals, fixed.ooo_arrivals / 2);
  EXPECT_GE(adaptive.goodput_gbps, fixed.goodput_gbps);
}

TEST(AdaptiveBatch, ShrinksWhenReorderFree) {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.warmup = sim::ms(4);
  cfg.measure = sim::ms(30);
  cfg.interference.enabled = false;  // no jitter -> no reordering at all
  auto mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.batch_size = 2048;
  cfg.mflow = mcfg;
  cfg.adaptive_batch = true;
  const auto res = exp::run_scenario(cfg);
  EXPECT_LT(res.final_batch, 2048u);  // probed downward
}

TEST(AdaptiveBatch, ControllerBoundsRespected) {
  sim::Simulator sim(1);
  stack::MachineParams mp;
  mp.num_cores = 4;
  stack::Machine machine(sim, mp);
  machine.set_path({});
  core::MflowEngine engine(machine, core::udp_device_scaling_config());
  core::AdaptiveBatchParams params;
  params.min_batch = 32;
  params.max_batch = 128;
  params.interval = sim::us(100);
  core::AdaptiveBatchController ctl(sim, engine, params);
  ctl.start();
  sim.run_until(sim::ms(50));
  // With zero traffic the ooo rate is 0 forever: batch shrinks to min and
  // stays there.
  EXPECT_EQ(ctl.current_batch(), 32u);
}
