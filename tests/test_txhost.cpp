// Detailed sender host (TX pipeline) and sender-side MFLOW.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "steering/modes.hpp"
#include "workload/txhost.hpp"

using namespace mflow;

namespace {

struct TxRig {
  sim::Simulator sim{9};
  stack::Machine rx;
  workload::WireLink wire;
  std::unique_ptr<workload::TxHost> tx;

  explicit TxRig(bool mflow_tx, sim::Time pace = 0)
      : rx(sim, rx_params()), wire(sim, rx, stack::CostModel{}.wire_latency) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    rx.set_path(overlay::build_rx_path(rx.costs(), spec));
    rx.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    rx.add_socket(5000, sc);
    rx.start();

    workload::TxHost::Config tc;
    tc.mflow_tx = mflow_tx;
    tc.pace_per_message = pace;
    tc.message_size = 65536;
    tc.flow = net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                           net::Ipv4Addr(10, 0, 1, 3), 41000, 5000,
                           net::Ipv4Header::kProtoUdp};
    tc.outer_src = net::Ipv4Addr(192, 168, 1, 2);
    tc.outer_dst = net::Ipv4Addr(192, 168, 1, 3);
    tx = std::make_unique<workload::TxHost>(sim, tc, wire);
    tx->start();
  }

  static stack::MachineParams rx_params() {
    stack::MachineParams mp;
    mp.num_cores = 4;
    return mp;
  }
};

}  // namespace

TEST(TxHost, PacketsArriveEncapsulatedAndDeliverable) {
  TxRig rig(/*mflow_tx=*/false, sim::us(500));
  rig.sim.run_until(sim::ms(10));
  const auto& st = rig.rx.socket(5000).stats();
  // Paced at 2k msg/s for 10ms -> ~20 messages of 64KB made it end to end,
  // meaning every fragment survived real encap on TX and real decap on RX.
  EXPECT_GE(st.messages, 15u);
  // Delivered bytes cover all completed messages.
  EXPECT_GE(st.payload_bytes, st.messages * 65536u);
  EXPECT_GT(rig.tx->packets_on_wire(), 600u);
}

TEST(TxHost, TxPathRunsOnAppCoreByDefault) {
  TxRig rig(false, sim::us(500));
  rig.sim.run_until(sim::ms(5));
  auto& app_core = rig.tx->machine().core(0);
  EXPECT_GT(app_core.busy_ns(sim::Tag::kVxlan), 0);  // encap on app core
  EXPECT_EQ(rig.tx->machine().core(1).total_busy_ns(), 0);
}

TEST(TxHost, MflowTxSplitsEncapAcrossCores) {
  TxRig rig(/*mflow_tx=*/true, sim::us(200));
  rig.sim.run_until(sim::ms(10));
  auto& m = rig.tx->machine();
  EXPECT_EQ(m.core(0).busy_ns(sim::Tag::kVxlan), 0);  // app core: no encap
  EXPECT_GT(m.core(1).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(m.core(2).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(m.core(3).busy_ns(sim::Tag::kMerge), 0);  // wire drain merges
}

TEST(TxHost, MflowTxLosesNothing) {
  TxRig rig(true, sim::us(200));
  rig.sim.run_until(sim::ms(10));
  // Everything generated reaches the wire (merge never wedges)...
  const auto frags_per_msg = (65536 + 1460 - 1) / 1460;
  EXPECT_GE(rig.tx->packets_on_wire(),
            (rig.tx->messages_generated() - 1) * frags_per_msg);
  // ...and completes at the receiver.
  EXPECT_GE(rig.rx.socket(5000).stats().messages,
            rig.tx->messages_generated() - 2);
}

TEST(TxHost, MflowTxRaisesSaturatedThroughput) {
  // Measure at the wire: the test receiver (vanilla, single RX core) is
  // deliberately NOT the bottleneck metric here.
  TxRig single(false);  // unpaced: saturate
  single.sim.run_until(sim::ms(10));
  TxRig split(true);
  split.sim.run_until(sim::ms(10));
  EXPECT_GT(split.tx->packets_on_wire(),
            static_cast<std::uint64_t>(
                static_cast<double>(single.tx->packets_on_wire()) * 1.5));
}

TEST(TxStages, EncapStageProducesValidOuter) {
  sim::Simulator sim;
  stack::MachineParams mp;
  mp.num_cores = 2;
  stack::Machine m(sim, mp);
  m.set_path(stack::build_tx_path(m.costs(), net::Ipv4Addr(1, 1, 1, 1),
                                  net::Ipv4Addr(2, 2, 2, 2), 99));
  m.set_steering(steer::make_policy(exp::Mode::kVanilla));
  net::PacketPtr seen;
  m.set_terminal([&](net::PacketPtr p, int) { seen = std::move(p); });

  auto pkt = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                   41000, 5000, net::Ipv4Header::kProtoUdp},
      100);
  // Inject directly into the TX path as the app would.
  sim.at(0, [&] { m.inject_into_path(0, 0, std::move(pkt)); });
  sim.run();
  ASSERT_TRUE(seen);
  EXPECT_TRUE(seen->encapsulated);
  const auto res = net::vxlan_decap(*seen);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.vni, 99u);
}
