#include <gtest/gtest.h>

#include "sim/interference.hpp"

using namespace mflow::sim;

TEST(Interference, InjectsBusyTime) {
  Simulator sim;
  Core core(sim, 0);
  InterferenceParams params;
  params.mean_interval = us(10);
  Interference inter(sim, params, 1);
  inter.attach(core);
  sim.run_until(ms(5));
  EXPECT_GT(inter.events_injected(), 100u);
  EXPECT_EQ(core.busy_ns(Tag::kOther), inter.total_injected_ns());
}

TEST(Interference, DisabledInjectsNothing) {
  Simulator sim;
  Core core(sim, 0);
  InterferenceParams params;
  params.enabled = false;
  Interference inter(sim, params, 1);
  inter.attach(core);
  sim.run_until(ms(5));
  EXPECT_EQ(inter.events_injected(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Interference, DurationsWithinBounds) {
  Simulator sim;
  Core core(sim, 0);
  InterferenceParams params;
  params.mean_interval = us(20);
  params.min_duration = us(1);
  params.max_duration = us(5);
  Interference inter(sim, params, 2);
  inter.attach(core);
  sim.run_until(ms(10));
  const auto events = inter.events_injected();
  ASSERT_GT(events, 0u);
  const double avg = static_cast<double>(inter.total_injected_ns()) /
                     static_cast<double>(events);
  EXPECT_GE(avg, static_cast<double>(us(1)));
  EXPECT_LE(avg, static_cast<double>(us(5)));
}

TEST(Interference, AttachIdempotent) {
  Simulator sim;
  Core core(sim, 0);
  InterferenceParams params;
  params.mean_interval = us(10);
  Interference inter(sim, params, 3);
  inter.attach(core);
  inter.attach(core);  // must not double the process
  Simulator sim2;
  Core core2(sim2, 0);
  Interference inter2(sim2, params, 3);
  inter2.attach(core2);
  sim.run_until(ms(2));
  sim2.run_until(ms(2));
  EXPECT_EQ(inter.events_injected(), inter2.events_injected());
}

TEST(Interference, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Core core(sim, 0);
    InterferenceParams params;
    params.mean_interval = us(10);
    Interference inter(sim, params, seed);
    inter.attach(core);
    sim.run_until(ms(3));
    return inter.total_injected_ns();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(Interference, IndependentStreamsPerCore) {
  Simulator sim;
  Core a(sim, 0), b(sim, 1);
  InterferenceParams params;
  params.mean_interval = us(10);
  Interference inter(sim, params, 4);
  inter.attach(a);
  inter.attach(b);
  sim.run_until(ms(5));
  // Both get events; the two cores' busy times differ (different forks).
  EXPECT_GT(a.busy_ns(Tag::kOther), 0);
  EXPECT_GT(b.busy_ns(Tag::kOther), 0);
  EXPECT_NE(a.busy_ns(Tag::kOther), b.busy_ns(Tag::kOther));
}
