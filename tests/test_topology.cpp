// Path construction for native / overlay / MFLOW variants.
#include <gtest/gtest.h>

#include "overlay/topology.hpp"
#include "stack/machine.hpp"

using namespace mflow;
using stack::StageId;

namespace {
std::vector<StageId> ids(
    const std::vector<std::unique_ptr<stack::Stage>>& path) {
  std::vector<StageId> out;
  for (const auto& s : path) out.push_back(s->id());
  return out;
}
stack::CostModel costs = stack::default_costs();
}  // namespace

TEST(Topology, OverlayTcpPathOrder) {
  overlay::PathSpec spec;
  spec.overlay = true;
  spec.protocol = net::Ipv4Header::kProtoTcp;
  const auto path = overlay::build_rx_path(costs, spec);
  EXPECT_EQ(ids(path),
            (std::vector<StageId>{StageId::kGro, StageId::kIpOuter,
                                  StageId::kVxlan, StageId::kBridge,
                                  StageId::kVeth, StageId::kIp,
                                  StageId::kTcp}));
}

TEST(Topology, OverlayUdpPathOrder) {
  overlay::PathSpec spec;
  spec.protocol = net::Ipv4Header::kProtoUdp;
  const auto path = overlay::build_rx_path(costs, spec);
  EXPECT_EQ(ids(path).back(), StageId::kUdp);
  EXPECT_EQ(ids(path).size(), 7u);
}

TEST(Topology, NativePathIsShort) {
  overlay::PathSpec spec;
  spec.overlay = false;
  spec.protocol = net::Ipv4Header::kProtoTcp;
  const auto path = overlay::build_rx_path(costs, spec);
  EXPECT_EQ(ids(path), (std::vector<StageId>{StageId::kGro, StageId::kIp,
                                             StageId::kTcp}));
}

TEST(Topology, TcpInReaderOmitsTcpStage) {
  overlay::PathSpec spec;
  spec.protocol = net::Ipv4Header::kProtoTcp;
  spec.tcp_in_reader = true;
  const auto path = overlay::build_rx_path(costs, spec);
  for (const auto& s : path) EXPECT_NE(s->id(), StageId::kTcp);
  EXPECT_EQ(ids(path).back(), StageId::kIp);
}

TEST(Topology, FindSoftirqTcpReceiver) {
  sim::Simulator sim;
  stack::MachineParams mp;
  mp.num_cores = 2;
  stack::Machine m(sim, mp);
  overlay::PathSpec spec;
  spec.protocol = net::Ipv4Header::kProtoTcp;
  m.set_path(overlay::build_rx_path(costs, spec));
  EXPECT_NE(overlay::find_softirq_tcp_receiver(m), nullptr);

  spec.tcp_in_reader = true;
  m.set_path(overlay::build_rx_path(costs, spec));
  EXPECT_EQ(overlay::find_softirq_tcp_receiver(m), nullptr);
}

TEST(Topology, GroCapsDifferByPathKind) {
  // Encapsulated aggregation is capped lower (calibration; DESIGN.md).
  overlay::PathSpec spec;
  EXPECT_LT(spec.gro_max_segs_overlay, spec.gro_max_segs_native);
}
