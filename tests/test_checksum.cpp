#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "net/checksum.hpp"
#include "util/rng.hpp"

using namespace mflow::net;

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const std::array<std::uint8_t, 8> data{0x00, 0x01, 0xf2, 0x03,
                                         0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum_fold(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, EmptyIsZeroSum) {
  EXPECT_EQ(checksum_fold({}), 0);
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, OddLengthPads) {
  const std::array<std::uint8_t, 3> data{0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402
  EXPECT_EQ(checksum_fold(data), 0x0402);
}

TEST(Checksum, VerifyRoundTrip) {
  mflow::util::Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(2 + rng.uniform(64) * 2);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
    // Install checksum at offset 0.
    data[0] = data[1] = 0;
    const auto csum = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(csum >> 8);
    data[1] = static_cast<std::uint8_t>(csum & 0xFF);
    EXPECT_TRUE(checksum_ok(data));
  }
}

TEST(Checksum, DetectsSingleBitFlip) {
  mflow::util::Rng rng(22);
  std::vector<std::uint8_t> data(40);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
  data[10] = data[11] = 0;
  const auto csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum & 0xFF);
  ASSERT_TRUE(checksum_ok(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto copy = data;
    copy[i] ^= 0x04;
    EXPECT_FALSE(checksum_ok(copy)) << "flip at " << i;
  }
}

TEST(Checksum, InitialAccumulates) {
  const std::array<std::uint8_t, 2> a{0x12, 0x34};
  const std::array<std::uint8_t, 2> b{0x56, 0x78};
  const auto partial = checksum_fold(a);
  EXPECT_EQ(checksum_fold(b, partial), 0x68ac);
}
