// Steering policies: placement decisions for vanilla / RPS / FALCON /
// paired-pipeline, without running packets.
#include <gtest/gtest.h>

#include "steering/modes.hpp"

using namespace mflow;
using stack::StageId;

namespace {
net::Packet pkt_for_flow(net::FlowId id, std::uint16_t sport = 1000) {
  net::Packet p;
  p.flow = net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2),
                        sport, 80, net::Ipv4Header::kProtoTcp};
  p.flow_id = id;
  return p;
}
}  // namespace

TEST(Vanilla, EverythingStaysLocal) {
  auto s = steer::make_policy(exp::Mode::kVanilla);
  auto p = pkt_for_flow(1);
  for (StageId st : {StageId::kGro, StageId::kVxlan, StageId::kTcp})
    EXPECT_EQ(s->core_for(st, p, 1), 1);
  EXPECT_EQ(s->steer_cost(StageId::kVxlan), 0);
}

TEST(Rps, SteersOnlyAtInnerIp) {
  steer::RpsSteering s({2, 3, 4}, StageId::kIp, 80);
  auto p = pkt_for_flow(1);
  EXPECT_EQ(s.core_for(StageId::kVxlan, p, 1), 1);  // pre-steer: local
  const int target = s.core_for(StageId::kIp, p, 1);
  EXPECT_GE(target, 2);
  EXPECT_LE(target, 4);
  // Post-steer stages stay wherever they are.
  EXPECT_EQ(s.core_for(StageId::kTcp, p, target), target);
  EXPECT_EQ(s.steer_cost(StageId::kIp), 80);
  EXPECT_EQ(s.steer_cost(StageId::kTcp), 0);
}

TEST(Rps, SameFlowAlwaysSameCore) {
  steer::RpsSteering s({2, 3, 4, 5}, StageId::kIp, 80);
  auto p = pkt_for_flow(1);
  const int first = s.core_for(StageId::kIp, p, 1);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(s.core_for(StageId::kIp, p, 1), first);
}

TEST(Rps, DistinctFlowsSpread) {
  steer::RpsSteering s({2, 3, 4, 5}, StageId::kIp, 80);
  std::set<int> used;
  for (std::uint16_t i = 0; i < 64; ++i) {
    auto p = pkt_for_flow(i, static_cast<std::uint16_t>(1000 + i));
    used.insert(s.core_for(StageId::kIp, p, 1));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(FalconDev, GroupsMatchPaperLayout) {
  steer::FalconSteering s(steer::FalconSteering::Level::kDevice, {2, 3},
                          /*overlay=*/true);
  EXPECT_EQ(s.group_of(StageId::kGro), 0);       // stays with driver core
  EXPECT_EQ(s.group_of(StageId::kIpOuter), 1);   // vxlan group
  EXPECT_EQ(s.group_of(StageId::kVxlan), 1);
  EXPECT_EQ(s.group_of(StageId::kBridge), 2);    // remaining devices
  EXPECT_EQ(s.group_of(StageId::kTcp), 2);
  EXPECT_EQ(s.groups(), 2);

  auto p = pkt_for_flow(1);
  EXPECT_EQ(s.core_for(StageId::kGro, p, 1), 1);
  const int vx = s.core_for(StageId::kVxlan, p, 1);
  const int rest = s.core_for(StageId::kBridge, p, vx);
  EXPECT_NE(vx, rest);  // device-level pipelining across two cores
}

TEST(FalconFun, GroGetsItsOwnCore) {
  steer::FalconSteering s(steer::FalconSteering::Level::kFunction,
                          {2, 3, 4}, /*overlay=*/true);
  EXPECT_EQ(s.group_of(StageId::kGro), 1);
  EXPECT_EQ(s.group_of(StageId::kVxlan), 2);
  EXPECT_EQ(s.group_of(StageId::kUdp), 3);
  EXPECT_EQ(s.groups(), 3);
  auto p = pkt_for_flow(1);
  const int gro = s.core_for(StageId::kGro, p, 1);
  const int vx = s.core_for(StageId::kVxlan, p, gro);
  const int rest = s.core_for(StageId::kTcp, p, vx);
  EXPECT_NE(gro, 1);
  EXPECT_NE(gro, vx);
  EXPECT_NE(vx, rest);
}

TEST(Falcon, NativePathCollapsesGroups) {
  steer::FalconSteering s(steer::FalconSteering::Level::kDevice, {2, 3},
                          /*overlay=*/false);
  EXPECT_EQ(s.group_of(StageId::kIp), 1);
  EXPECT_EQ(s.group_of(StageId::kTcp), 1);
  EXPECT_EQ(s.groups(), 1);
}

TEST(Falcon, FlowPipelinesStable) {
  steer::FalconSteering s(steer::FalconSteering::Level::kDevice,
                          {2, 3, 4, 5}, true);
  auto p = pkt_for_flow(9);
  const int vx = s.core_for(StageId::kVxlan, p, 1);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(s.core_for(StageId::kVxlan, p, 1), vx);
}

TEST(PairedPipeline, MapsOnlyConfiguredCores) {
  steer::PairedPipelineSteering s({{2, 4}, {3, 5}}, StageId::kGro);
  auto p = pkt_for_flow(1);
  EXPECT_EQ(s.core_for(StageId::kGro, p, 2), 4);
  EXPECT_EQ(s.core_for(StageId::kGro, p, 3), 5);
  EXPECT_EQ(s.core_for(StageId::kGro, p, 7), 7);   // unpaired: stay
  EXPECT_EQ(s.core_for(StageId::kVxlan, p, 2), 2);  // other stages: stay
}
