#include <gtest/gtest.h>

#include <set>

#include "net/flow.hpp"

using namespace mflow::net;

namespace {
FlowKey base() {
  return FlowKey{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1234, 80,
                 Ipv4Header::kProtoTcp};
}
}  // namespace

TEST(FlowKey, EqualityAndOrdering) {
  FlowKey a = base(), b = base();
  EXPECT_EQ(a, b);
  b.src_port = 1235;
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(FlowKey, ToStringReadable) {
  const auto s = base().to_string();
  EXPECT_NE(s.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(s.find("/tcp"), std::string::npos);
}

TEST(FlowHash, DeterministicSameFlowSameHash) {
  EXPECT_EQ(flow_hash(base()), flow_hash(base()));
  EXPECT_EQ(flow_hash(base(), 99), flow_hash(base(), 99));
}

TEST(FlowHash, SeedChangesHash) {
  EXPECT_NE(flow_hash(base(), 1), flow_hash(base(), 2));
}

TEST(FlowHash, FieldsAffectHash) {
  const auto h0 = flow_hash(base());
  FlowKey k = base();
  k.src_port = 1235;
  EXPECT_NE(flow_hash(k), h0);
  k = base();
  k.dst = Ipv4Addr(10, 0, 0, 3);
  EXPECT_NE(flow_hash(k), h0);
  k = base();
  k.protocol = Ipv4Header::kProtoUdp;
  EXPECT_NE(flow_hash(k), h0);
}

TEST(FlowHash, SpreadsOverQueues) {
  // RSS-style distribution: 1000 distinct flows over 10 queues should use
  // every queue and not put more than ~25% on any one of them.
  std::array<int, 10> counts{};
  for (int i = 0; i < 1000; ++i) {
    FlowKey k = base();
    k.src_port = static_cast<std::uint16_t>(10000 + i);
    counts[flow_hash(k) % 10]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 250);
  }
}

TEST(FlowHash, StdHashUsable) {
  std::set<std::size_t> hashes;
  for (int i = 0; i < 100; ++i) {
    FlowKey k = base();
    k.dst_port = static_cast<std::uint16_t>(i);
    hashes.insert(std::hash<FlowKey>{}(k));
  }
  EXPECT_GT(hashes.size(), 95u);  // near-collision-free on small sets
}
