// BatchAssigner + FlowSplitter: micro-flow identity, round-robin target
// cores, elephant classification, amortized charging.
#include <gtest/gtest.h>

#include "core/mflow.hpp"
#include "core/splitter.hpp"
#include "overlay/topology.hpp"
#include "steering/modes.hpp"

using namespace mflow;

TEST(BatchAssigner, BatchesAndRoundRobin) {
  core::MflowConfig cfg;
  cfg.batch_size = 4;
  cfg.splitting_cores = {2, 3};
  core::BatchAssigner a(cfg);

  std::vector<std::uint64_t> ids;
  std::vector<int> cores;
  for (int i = 0; i < 12; ++i) {
    const auto as = a.assign(1, 1);
    ids.push_back(as.microflow_id);
    cores.push_back(as.target_core);
    EXPECT_EQ(as.new_batch, i % 4 == 0);
  }
  // Three batches of four, alternating cores.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ids[static_cast<size_t>(i)],
              static_cast<std::uint64_t>(i / 4 + 1));
    EXPECT_EQ(cores[static_cast<size_t>(i)],
              cores[static_cast<size_t>((i / 4) * 4)]);
  }
  EXPECT_NE(cores[0], cores[4]);  // consecutive batches on different cores
  EXPECT_EQ(cores[0], cores[8]);  // wraps around two cores
}

TEST(BatchAssigner, ElephantThresholdGates) {
  core::MflowConfig cfg;
  cfg.batch_size = 4;
  cfg.elephant_threshold_pkts = 10;
  core::BatchAssigner a(cfg);
  int mice = 0;
  for (int i = 0; i < 10; ++i)
    if (a.assign(1, 1).microflow_id == 0) ++mice;
  EXPECT_EQ(mice, 10);  // still under threshold
  EXPECT_NE(a.assign(1, 1).microflow_id, 0u);  // now an elephant
  EXPECT_EQ(a.observed(1), 11u);
}

TEST(BatchAssigner, FlowsIndependentAndStaggered) {
  core::MflowConfig cfg;
  cfg.batch_size = 256;
  cfg.splitting_cores = {2, 3, 4, 5};
  core::BatchAssigner a(cfg);
  // Different flows should not all start on the same splitting core.
  std::set<int> first_cores;
  for (net::FlowId f = 1; f <= 8; ++f)
    first_cores.insert(a.assign(f, 1).target_core);
  EXPECT_GT(first_cores.size(), 1u);
}

TEST(BatchAssigner, SegsCountTowardBatchSize) {
  core::MflowConfig cfg;
  cfg.batch_size = 8;
  core::BatchAssigner a(cfg);
  // Two 4-segment super-skbs fill a batch.
  EXPECT_EQ(a.assign(1, 4).microflow_id, 1u);
  EXPECT_EQ(a.assign(1, 4).microflow_id, 1u);
  EXPECT_EQ(a.assign(1, 4).microflow_id, 2u);
}

// --- FlowSplitter wired into a machine ---------------------------------------

namespace {

struct SplitRig {
  sim::Simulator sim{1};
  stack::MachineParams mp;
  stack::Machine machine;
  core::MflowConfig cfg;
  std::unique_ptr<core::MflowEngine> engine;

  SplitRig() : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    machine.add_socket(5000, sc);
    machine.start();

    cfg = core::udp_device_scaling_config();
    cfg.batch_size = 16;
    engine = std::make_unique<core::MflowEngine>(machine, cfg);
    engine->attach_socket(5000, machine.socket(5000));
    engine->install();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 8;
    return mp;
  }

  void deliver(int n) {
    for (int i = 0; i < n; ++i) {
      auto p = net::make_udp_datagram(
          net::FlowKey{net::Ipv4Addr(10, 0, 1, 2),
                       net::Ipv4Addr(10, 0, 1, 3), 41000, 5000,
                       net::Ipv4Header::kProtoUdp},
          1000);
      p->flow_id = 1;
      p->message_id = static_cast<std::uint64_t>(i);
      p->message_bytes = 1000;
      net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                       net::Ipv4Addr(192, 168, 1, 3), 42);
      machine.nic().deliver(std::move(p), sim.now());
    }
  }
};

}  // namespace

TEST(FlowSplitter, SplitsAcrossConfiguredCores) {
  SplitRig rig;
  rig.deliver(64);
  rig.sim.run();
  // VXLAN work must appear on both splitting cores and NOT on the IRQ core.
  EXPECT_GT(rig.machine.core(2).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_GT(rig.machine.core(3).busy_ns(sim::Tag::kVxlan), 0);
  EXPECT_EQ(rig.machine.core(1).busy_ns(sim::Tag::kVxlan), 0);
  // All messages delivered despite the split.
  EXPECT_EQ(rig.machine.socket(5000).stats().messages, 64u);
}

TEST(FlowSplitter, AllPacketsDeliveredInWireOrder) {
  SplitRig rig;
  rig.deliver(200);
  rig.sim.run();
  const auto& st = rig.machine.socket(5000).stats();
  EXPECT_EQ(st.messages, 200u);
  EXPECT_EQ(st.skbs, 200u);
  EXPECT_EQ(rig.engine->batches_merged() + 1, (200 + 15) / 16u);
}
