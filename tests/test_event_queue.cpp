#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace mflow::sim;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, RandomizedOrderInvariant) {
  EventQueue q;
  mflow::util::Rng rng(4);
  for (int i = 0; i < 5000; ++i)
    q.push(static_cast<Time>(rng.uniform(1000)), [] {});
  Time last = -1;
  while (!q.empty()) {
    auto [when, fn] = q.pop();
    EXPECT_GE(when, last);
    last = when;
  }
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.at(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time seen = -1;
  sim.at(50, [&] { sim.after(25, [&] { seen = sim.now(); }); });
  sim.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, RunUntilStopsBeforeBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  const auto n = sim.run_until(20);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(1, recurse);
  };
  sim.at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Simulator, SeededRngDeterministic) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next(), b.rng().next());
}
