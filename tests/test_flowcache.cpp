// Per-flow encap/decap fast-path cache (stack/flowcache.hpp + overlay
// wiring + rt engine overlay mode).
//
// The safety contract under test: a lookup NEVER returns an uncommitted or
// stale entry. The round-trip property tests drive real encapsulated bytes
// through the full pipeline across FDB relearns and control-plane rescale
// epochs and assert every delivered message is intact — an applied stale
// decision would corrupt payload accounting or deliver out of order, both
// of which these tests would catch.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "overlay/topology.hpp"
#include "rt/engine.hpp"
#include "stack/bridge.hpp"
#include "stack/flowcache.hpp"
#include "stack/machine.hpp"
#include "stack/vxlan.hpp"
#include "steering/modes.hpp"

using namespace mflow;

namespace {

net::PacketPtr flow_packet(std::uint16_t src_port, net::FlowId flow_id) {
  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                   src_port, 5000, net::Ipv4Header::kProtoUdp},
      256);
  p->flow_id = flow_id;
  return p;
}

// Inner dst MAC every make_udp_datagram frame carries (net/packet.cpp).
const net::MacAddr kInnerDst{0x02, 0x42, 0xac, 0x11, 0x00, 0x03};

}  // namespace

// --- FlowCache unit ----------------------------------------------------------

TEST(FlowCache, LookupMissesUntilVethCommits) {
  stack::FlowCache cache;
  auto p = flow_packet(41000, 1);
  EXPECT_FALSE(cache.would_hit(*p));
  EXPECT_EQ(cache.lookup(*p), nullptr);  // nothing recorded

  cache.record_vni(*p, 42);
  EXPECT_EQ(cache.lookup(*p), nullptr);  // open but not sealed
  EXPECT_FALSE(cache.commit(*p));        // bridge never contributed

  cache.record_port(*p, kInnerDst, 1);
  EXPECT_EQ(cache.lookup(*p), nullptr);  // still uncommitted
  EXPECT_TRUE(cache.commit(*p));         // veth seals it
  EXPECT_FALSE(cache.commit(*p));        // idempotent: only first seal counts

  EXPECT_TRUE(cache.would_hit(*p));
  const auto* e = cache.lookup(*p);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->vni, 42u);
  EXPECT_EQ(e->fdb_port, 1);
  EXPECT_TRUE(e->committed);
  EXPECT_EQ(cache.inserts(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);  // the three pre-commit lookups
}

TEST(FlowCache, CapacityEvictsAndCounts) {
  stack::FlowCache cache({/*capacity=*/2});
  for (std::uint16_t i = 0; i < 3; ++i) {
    auto p = flow_packet(static_cast<std::uint16_t>(41000 + i), i + 1);
    cache.record_vni(*p, 42);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(FlowCache, InvalidateMacErasesOnlyMatchingEntries) {
  stack::FlowCache cache;
  auto a = flow_packet(41000, 1);
  auto b = flow_packet(41001, 2);
  for (auto* p : {a.get(), b.get()}) {
    cache.record_vni(*p, 42);
    cache.record_port(*p, p->flow_id == 1 ? kInnerDst : net::MacAddr{1, 2, 3},
                      1);
    EXPECT_TRUE(cache.commit(*p));
  }
  cache.invalidate_mac(kInnerDst);
  EXPECT_EQ(cache.lookup(*a), nullptr);  // erased (and counted as a miss)
  EXPECT_NE(cache.lookup(*b), nullptr);  // different MAC untouched
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(FlowCache, InvalidateFlowAndAll) {
  stack::FlowCache cache;
  auto a = flow_packet(41000, 7);
  cache.record_vni(*a, 42);
  cache.record_port(*a, kInnerDst, 1);
  EXPECT_TRUE(cache.commit(*a));

  cache.invalidate_flow(7);
  EXPECT_EQ(cache.lookup(*a), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);

  cache.record_vni(*a, 42);
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 2u);
}

// --- DES round trip through the real pipeline --------------------------------

namespace {

struct CacheRig {
  sim::Simulator sim{1};
  stack::Machine machine;
  stack::FlowCache cache;

  CacheRig() : machine(sim, make_params()) {
    overlay::PathSpec spec;
    spec.overlay = true;
    spec.protocol = net::Ipv4Header::kProtoUdp;
    machine.set_path(overlay::build_rx_path(machine.costs(), spec));
    machine.set_steering(steer::make_policy(exp::Mode::kVanilla));
    overlay::install_flow_cache(machine, cache);
    stack::SocketConfig sc;
    sc.protocol = net::Ipv4Header::kProtoUdp;
    sc.app_core = 0;
    sc.message_size = 1000;
    machine.add_socket(5000, sc);
    machine.start();
  }

  static stack::MachineParams make_params() {
    stack::MachineParams mp;
    mp.num_cores = 8;
    return mp;
  }

  stack::VxlanStage& vxlan() {
    return static_cast<stack::VxlanStage&>(
        machine.stage_at(machine.stage_index(stack::StageId::kVxlan)));
  }
  stack::BridgeStage& bridge() {
    return static_cast<stack::BridgeStage&>(
        machine.stage_at(machine.stage_index(stack::StageId::kBridge)));
  }

  /// One encapsulated 1000-byte message; runs the sim to completion.
  void deliver(std::uint64_t msg_id, std::uint32_t vni = 42) {
    auto p = net::make_udp_datagram(
        net::FlowKey{net::Ipv4Addr(10, 0, 1, 2), net::Ipv4Addr(10, 0, 1, 3),
                     41000, 5000, net::Ipv4Header::kProtoUdp},
        1000);
    p->flow_id = 1;
    p->message_id = msg_id;
    p->message_bytes = 1000;
    net::vxlan_encap(*p, net::Ipv4Addr(192, 168, 1, 2),
                     net::Ipv4Addr(192, 168, 1, 3), vni);
    machine.nic().deliver(std::move(p), sim.now());
    sim.run();
  }

  std::uint64_t messages() { return machine.socket(5000).stats().messages; }
};

}  // namespace

TEST(FlowCacheMachine, FirstPacketSlowThenSplices) {
  CacheRig rig;
  rig.deliver(0);
  EXPECT_EQ(rig.messages(), 1u);
  EXPECT_EQ(rig.vxlan().spliced(), 0u);  // first packet resolved slow
  EXPECT_EQ(rig.cache.inserts(), 1u);

  for (std::uint64_t m = 1; m <= 4; ++m) rig.deliver(m);
  EXPECT_EQ(rig.messages(), 5u);
  EXPECT_EQ(rig.vxlan().spliced(), 4u);  // every later packet fast-pathed
  EXPECT_EQ(rig.cache.hits(), 4u);
  EXPECT_EQ(rig.machine.socket(5000).stats().payload_bytes, 5000u);
}

TEST(FlowCacheMachine, FdbMoveForcesSlowPathReResolve) {
  CacheRig rig;
  rig.bridge().learn(kInnerDst, 1);
  rig.deliver(0);
  rig.deliver(1);
  ASSERT_EQ(rig.vxlan().spliced(), 1u);

  // Container migration: the inner MAC moves port. Every cached decision
  // against it must die before the next packet.
  rig.bridge().learn(kInnerDst, 2);
  EXPECT_EQ(rig.cache.size(), 0u);
  EXPECT_EQ(rig.cache.invalidations(), 1u);

  const auto spliced_before = rig.vxlan().spliced();
  rig.deliver(2);  // re-resolves through vxlan -> bridge -> veth
  EXPECT_EQ(rig.vxlan().spliced(), spliced_before);
  EXPECT_EQ(rig.messages(), 3u);  // still delivered, intact

  rig.deliver(3);  // recommitted entry splices again
  EXPECT_EQ(rig.vxlan().spliced(), spliced_before + 1);
  EXPECT_EQ(rig.messages(), 4u);
  EXPECT_EQ(rig.machine.socket(5000).stats().payload_bytes, 4000u);
}

TEST(FlowCacheMachine, FdbRefreshSamePortKeepsEntries) {
  CacheRig rig;
  rig.bridge().learn(kInnerDst, 1);
  rig.deliver(0);
  rig.deliver(1);
  rig.bridge().learn(kInnerDst, 1);  // refresh, not a move
  EXPECT_EQ(rig.cache.invalidations(), 0u);
  rig.deliver(2);
  EXPECT_EQ(rig.vxlan().spliced(), 2u);
}

TEST(FlowCacheMachine, ForeignVniNeverSplicedThroughCommittedEntry) {
  CacheRig rig;
  rig.deliver(0);
  rig.deliver(1);
  ASSERT_EQ(rig.vxlan().spliced(), 1u);

  // Same flow, wrong VNI: the committed entry must NOT splice it through;
  // the probe falls back to the validating slow path, which drops it.
  rig.deliver(2, /*vni=*/999);
  EXPECT_EQ(rig.vxlan().spliced(), 1u);
  EXPECT_EQ(rig.vxlan().decap_failures(), 1u);
  EXPECT_EQ(rig.messages(), 2u);
  // The disagreeing bytes also killed the entry (tunnel changed under the
  // flow) — the next good packet re-resolves, then splices again.
  rig.deliver(3);
  EXPECT_EQ(rig.vxlan().spliced(), 1u);
  rig.deliver(4);
  EXPECT_EQ(rig.vxlan().spliced(), 2u);
  EXPECT_EQ(rig.messages(), 4u);
}

TEST(FlowCacheMachine, InstallRejectsNativePath) {
  sim::Simulator sim{1};
  stack::Machine machine(sim, CacheRig::make_params());
  overlay::PathSpec spec;
  spec.overlay = false;
  spec.protocol = net::Ipv4Header::kProtoUdp;
  machine.set_path(overlay::build_rx_path(machine.costs(), spec));
  stack::FlowCache cache;
  EXPECT_THROW(overlay::install_flow_cache(machine, cache),
               std::invalid_argument);
}

// --- rescale epochs: the control plane's invalidation path -------------------

namespace {

// The PR-5 live-rescale scenario (elephant -> mouse -> elephant round trip
// under the dynamic control plane) with the fast-path cache enabled: every
// set_flow_degree erases the flow's entry, so a split-degree change can
// never apply a pre-rescale decision.
exp::ScenarioConfig rescale_with_cache_config() {
  exp::ScenarioConfig cfg;
  cfg.mode = exp::Mode::kMflow;
  cfg.protocol = net::Ipv4Header::kProtoTcp;
  cfg.message_size = 65536;
  cfg.num_flows = 3;
  cfg.server_cores = 8;
  cfg.app_cores = 1;
  cfg.first_kernel_core = 1;
  cfg.kernel_cores = 7;
  cfg.warmup = sim::ms(2);
  cfg.measure = sim::ms(10);
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  cfg.mflow = mcfg;
  cfg.control.enabled = true;
  cfg.control.interval = sim::us(100);
  cfg.control.params.monitor.window = sim::ms(1);
  cfg.control.params.classifier.promote_pps = 200'000.0;
  cfg.control.params.classifier.demote_pps = 100'000.0;
  cfg.control.params.classifier.dwell = sim::us(300);
  cfg.rate_changes.push_back({0, sim::ms(5), sim::ms(2)});
  cfg.rate_changes.push_back({0, sim::ms(9), 0});
  cfg.fastpath.enabled = true;
  return cfg;
}

}  // namespace

TEST(FlowCacheScenario, LiveRescaleInvalidatesAndStaysLossless) {
  const auto r = exp::run_scenario(rescale_with_cache_config());
  EXPECT_GT(r.goodput_gbps, 1.0);
  EXPECT_GE(r.control.rescales, 3u);
  // Each rescale erased the flow's entry...
  EXPECT_GT(r.cache_invalidations, 0u);
  // ...and the flow re-resolved afterwards, so the cache kept working.
  EXPECT_GT(r.cache_hits, 0u);
  // No stale decision applied: conservation and ordering hold through
  // every epoch exactly as in the cache-off LiveRescale test.
  EXPECT_EQ(r.drops_recovered, 0u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.late_deliveries, 0u);
  EXPECT_EQ(r.nic_drops, 0u);
}

TEST(FlowCacheScenario, CachedRunIsDeterministic) {
  const auto a = exp::run_scenario(rescale_with_cache_config());
  const auto b = exp::run_scenario(rescale_with_cache_config());
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_invalidations, b.cache_invalidations);
}

TEST(FlowCacheScenario, ValidateRejectsConflictingKnobs) {
  exp::ScenarioConfig cfg;
  cfg.fastpath.enabled = true;
  cfg.fastpath.capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fastpath.capacity = 64;
  EXPECT_NO_THROW(cfg.validate());
  cfg.mode = exp::Mode::kNative;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- rt engine overlay mode --------------------------------------------------

namespace {

rt::EngineConfig rt_overlay_config(bool cache) {
  rt::EngineConfig cfg;
  cfg.workers = 2;
  cfg.batch_size = 64;
  cfg.cost_ns_per_packet = 0;
  cfg.max_push_spins = 0;  // lossless: per-worker streams deterministic
  cfg.overlay.enabled = true;
  cfg.overlay.cache = cache;
  cfg.overlay.flows = 8;
  return cfg;
}

}  // namespace

TEST(RtOverlay, DecapsEveryPacketWithoutCache) {
  const auto r = rt::Engine(rt_overlay_config(false)).run(4096);
  EXPECT_EQ(r.packets, 4096u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.decap_failures, 0u);
  EXPECT_EQ(r.cache_hits + r.cache_misses, 0u);  // no cache, no probes
}

TEST(RtOverlay, CacheProbesEveryPacketAndMostlyHits) {
  const auto r = rt::Engine(rt_overlay_config(true)).run(4096);
  EXPECT_EQ(r.packets, 4096u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.decap_failures, 0u);
  // Every packet either spliced via the cache or took the full decap.
  EXPECT_EQ(r.cache_hits + r.cache_misses, 4096u);
  EXPECT_GT(r.cache_hits, r.cache_misses);  // 8 flows, steady traffic
}

TEST(RtOverlay, HitCountsAreDeterministicWhenLossless) {
  const auto a = rt::Engine(rt_overlay_config(true)).run(4096);
  const auto b = rt::Engine(rt_overlay_config(true)).run(4096);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(RtOverlay, RescaleEpochInvalidatesCachedEntries) {
  auto cfg = rt_overlay_config(true);
  cfg.rescales = {{1500, 1}, {2500, 2}};
  const auto r = rt::Engine(cfg).run(4096);
  EXPECT_EQ(r.packets, 4096u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.decap_failures, 0u);
  EXPECT_EQ(r.rescales_applied, 2u);
  // Entries installed under epoch 0 must not survive into epoch 1/2: the
  // first post-rescale packet of each cached flow re-resolves.
  EXPECT_GT(r.cache_invalidations, 0u);
  EXPECT_EQ(r.cache_hits + r.cache_misses, 4096u);
}

TEST(RtOverlay, TinyCacheThrashesButStaysCorrect) {
  // Batches are per-flow, so even a thrashing direct-mapped table hits
  // within a batch; the conflict cost shows up as one re-resolve per
  // batch-level slot steal. Compare misses against an ample table.
  auto ample = rt_overlay_config(true);
  ample.overlay.flows = 32;
  const auto a = rt::Engine(ample).run(4096);

  auto tiny = ample;
  tiny.overlay.cache_slots = 2;  // 32 flows fight over 2 slots per worker
  const auto t = rt::Engine(tiny).run(4096);

  for (const auto* r : {&a, &t}) {
    EXPECT_EQ(r->packets, 4096u);
    EXPECT_TRUE(r->in_order);
    EXPECT_EQ(r->decap_failures, 0u);
    EXPECT_EQ(r->cache_hits + r->cache_misses, 4096u);
  }
  // Ample: one miss per flow, ever. Tiny: one per conflict steal.
  EXPECT_GT(t.cache_misses, a.cache_misses);
}
