// util/log: level filtering, sink capture, and thread-safety of
// log_message (concurrent writers must produce whole, uninterleaved lines).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mflow::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kWarn);
    set_log_sink([this](LogLevel level, const std::string& msg) {
      std::lock_guard<std::mutex> lock(mu_);
      captured_.emplace_back(level, msg);
    });
  }

  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> captured() {
    std::lock_guard<std::mutex> lock(mu_);
    return captured_;
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, LevelFilteringDiscardsBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  log_message(LogLevel::kDebug, "debug");
  log_message(LogLevel::kInfo, "info");
  log_message(LogLevel::kWarn, "warn");
  log_message(LogLevel::kError, "error");
  const auto got = captured();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, LogLevel::kWarn);
  EXPECT_EQ(got[0].second, "warn");
  EXPECT_EQ(got[1].first, LogLevel::kError);
  EXPECT_EQ(got[1].second, "error");
}

TEST_F(LogTest, OffDiscardsEverything) {
  set_log_level(LogLevel::kOff);
  log_message(LogLevel::kError, "nope");
  EXPECT_TRUE(captured().empty());
}

TEST_F(LogTest, DebugThresholdPassesEverything) {
  set_log_level(LogLevel::kDebug);
  log_message(LogLevel::kDebug, "d");
  log_message(LogLevel::kError, "e");
  EXPECT_EQ(captured().size(), 2u);
}

TEST_F(LogTest, MacroRespectsThreshold) {
  set_log_level(LogLevel::kInfo);
  MFLOW_DEBUG() << "hidden " << 1;
  MFLOW_INFO() << "shown " << 2;
  const auto got = captured();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, "shown 2");
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, ConcurrentWritersAllArriveIntact) {
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i)
          log_message(LogLevel::kInfo,
                      "t" + std::to_string(t) + ":" + std::to_string(i));
      });
    }
  }
  const auto got = captured();
  ASSERT_EQ(got.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Per-thread messages keep their order and none are torn.
  std::vector<int> next(kThreads, 0);
  for (const auto& [level, msg] : got) {
    ASSERT_EQ(level, LogLevel::kInfo);
    const auto colon = msg.find(':');
    ASSERT_NE(colon, std::string::npos) << msg;
    const int t = std::stoi(msg.substr(1, colon - 1));
    const int i = std::stoi(msg.substr(colon + 1));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(i, next[t]) << "messages from thread " << t << " reordered";
    ++next[t];
  }
}

}  // namespace
}  // namespace mflow::util
