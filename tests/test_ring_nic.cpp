#include <gtest/gtest.h>

#include "net/nic.hpp"

using namespace mflow::net;

namespace {
PacketPtr pkt(std::uint16_t sport, FlowId id = 1) {
  auto p = make_udp_datagram(
      FlowKey{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), sport, 5000,
              Ipv4Header::kProtoUdp},
      100);
  p->flow_id = id;
  return p;
}
}  // namespace

TEST(RxRing, FifoOrder) {
  RxRing ring(8);
  for (std::uint16_t i = 0; i < 5; ++i) ring.push(pkt(i));
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto p = ring.pop();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->flow.src_port, i);
  }
  EXPECT_EQ(ring.pop(), nullptr);
}

TEST(RxRing, DropsWhenFull) {
  RxRing ring(4);
  for (int i = 0; i < 6; ++i) ring.push(pkt(0));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.drops(), 2u);
  EXPECT_EQ(ring.total_enqueued(), 4u);
  EXPECT_TRUE(ring.full());
}

TEST(RxRing, WrapAround) {
  RxRing ring(3);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(ring.push(pkt(static_cast<std::uint16_t>(round))));
    auto p = ring.pop();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->flow.src_port, round);
  }
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(Nic, StampsPerFlowWireSeq) {
  Nic nic(NicParams{.num_queues = 1});
  nic.deliver(pkt(1, 7), 100);
  nic.deliver(pkt(1, 7), 200);
  nic.deliver(pkt(2, 8), 300);
  auto a = nic.queue(0).pop();
  auto b = nic.queue(0).pop();
  auto c = nic.queue(0).pop();
  EXPECT_EQ(a->wire_seq, 0u);
  EXPECT_EQ(a->t_wire, 100);
  EXPECT_EQ(b->wire_seq, 1u);   // same flow: increments
  EXPECT_EQ(c->wire_seq, 0u);   // different flow: independent counter
}

TEST(Nic, RssPinsFlowToOneQueue) {
  Nic nic(NicParams{.num_queues = 8});
  const int q = nic.rss_queue(pkt(42)->flow);
  for (int i = 0; i < 50; ++i) nic.deliver(pkt(42), i);
  EXPECT_EQ(nic.queue(q).size(), 50u);
  for (int i = 0; i < 8; ++i)
    if (i != q) EXPECT_EQ(nic.queue(i).size(), 0u);
}

TEST(Nic, RssSpreadsDistinctFlows) {
  Nic nic(NicParams{.num_queues = 8});
  std::set<int> used;
  for (std::uint16_t i = 0; i < 64; ++i)
    used.insert(nic.rss_queue(pkt(i)->flow));
  EXPECT_EQ(used.size(), 8u);
}

TEST(Nic, IrqFiresPerDelivery) {
  Nic nic(NicParams{.num_queues = 2});
  int irqs = 0;
  int last_q = -1;
  nic.set_irq_handler([&](int q) {
    ++irqs;
    last_q = q;
  });
  auto p = pkt(3);
  const int expect_q = nic.rss_queue(p->flow);
  nic.deliver(std::move(p), 1);
  EXPECT_EQ(irqs, 1);
  EXPECT_EQ(last_q, expect_q);
}

TEST(Nic, NoIrqOnRingOverflowDrop) {
  Nic nic(NicParams{.num_queues = 1, .ring_capacity = 2});
  int irqs = 0;
  nic.set_irq_handler([&](int) { ++irqs; });
  for (int i = 0; i < 5; ++i) nic.deliver(pkt(0), i);
  EXPECT_EQ(irqs, 2);
  EXPECT_EQ(nic.total_drops(), 3u);
  EXPECT_EQ(nic.total_delivered(), 2u);
}
