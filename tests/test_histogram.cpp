#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

using mflow::util::Histogram;

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  // Log-bucketed: quantile returns the bucket midpoint, within 2%.
  EXPECT_NEAR(static_cast<double>(h.p50()), 1234.0, 1234.0 * 0.02);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
  // Values below the linear/sub-bucket threshold are recorded exactly.
  EXPECT_EQ(h.quantile(1.0), 63u);
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h;
  mflow::util::Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.record(rng.uniform(1000000));
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.max());
}

TEST(Histogram, RelativeErrorBounded) {
  // Compare against exact nearest-rank percentiles on a random sample.
  mflow::util::Rng rng(6);
  Histogram h;
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 50000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.pareto(100, 1.2, 1e9));
    xs.push_back(v);
    h.record(v);
  }
  std::sort(xs.begin(), xs.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto exact = xs[static_cast<std::size_t>(
        q * static_cast<double>(xs.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05)
        << "q=" << q;
  }
}

TEST(Histogram, MeanAndStddevExact) {
  Histogram h;
  for (std::uint64_t v : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u}) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 2.0);
}

TEST(Histogram, RecordNWeighted) {
  Histogram a, b;
  a.record_n(100, 5);
  for (int i = 0; i < 5; ++i) b.record(100);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Histogram, MergeMatchesCombined) {
  mflow::util::Rng rng(7);
  Histogram a, b, all;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(100000);
    all.record(v);
    (i % 2 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.p50(), all.p50());
  EXPECT_EQ(a.p99(), all.p99());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, HugeValuesDontCrash) {
  Histogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_GT(h.quantile(1.0), 1ull << 61);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.record(1000);
  const auto s = h.summary(1e-3, "us");
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}
