// Virtual-core semantics: slicing, round-robin fairness, accounting, IPIs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/core.hpp"

using namespace mflow::sim;

namespace {

/// Pollable doing `per_item` ns of work for each of `items` queued items.
class Work : public Pollable {
 public:
  Work(Tag tag, Time per_item) : tag_(tag), per_item_(per_item) {}
  void add(int n) { items_ += n; }
  int processed = 0;

  bool poll(Core& core, int budget) override {
    int n = 0;
    while (n < budget && items_ > 0) {
      core.charge(tag_, per_item_);
      --items_;
      ++processed;
      ++n;
    }
    return items_ > 0;
  }

 private:
  Tag tag_;
  Time per_item_;
  int items_ = 0;
};

}  // namespace

TEST(Core, ProcessesQueuedWork) {
  Simulator sim;
  Core core(sim, 0);
  Work w(Tag::kDriver, 100);
  w.add(10);
  core.raise(w);
  sim.run();
  EXPECT_EQ(w.processed, 10);
  EXPECT_EQ(core.busy_ns(Tag::kDriver), 1000);
}

TEST(Core, BusyTimeSerializes) {
  Simulator sim;
  Core core(sim, 0);
  Work w(Tag::kDriver, 100);
  w.add(128);  // two slices at budget 64
  core.raise(w);
  sim.run();
  // Second slice starts only after the first slice's 6400ns elapse.
  EXPECT_EQ(core.free_at(), 12800);
  EXPECT_EQ(core.slices_run(), 2u);
}

TEST(Core, RoundRobinFairness) {
  Simulator sim;
  Core core(sim, 0, CoreParams{.napi_budget = 4});
  Work a(Tag::kVxlan, 10), b(Tag::kBridge, 10);
  a.add(100);
  b.add(100);
  core.raise(a);
  core.raise(b);
  sim.run_until(600);
  // Both made progress early — neither starved.
  EXPECT_GT(a.processed, 0);
  EXPECT_GT(b.processed, 0);
  sim.run();
  EXPECT_EQ(a.processed, 100);
  EXPECT_EQ(b.processed, 100);
}

TEST(Core, RemoteRaisePaysWakeup) {
  Simulator sim;
  CoreParams params;
  params.ipi_wakeup_ns = 1500;
  Core core(sim, 1, params);
  Work w(Tag::kSkbAlloc, 100);
  w.add(1);
  EXPECT_TRUE(core.raise(w, /*remote=*/true));
  sim.run();
  EXPECT_EQ(core.free_at(), 1600);  // wakeup + work
}

TEST(Core, RaiseWhileScheduledReturnsFalse) {
  Simulator sim;
  Core core(sim, 0);
  Work w(Tag::kDriver, 10);
  w.add(1);
  EXPECT_TRUE(core.raise(w));
  Work w2(Tag::kGro, 10);
  w2.add(1);
  EXPECT_FALSE(core.raise(w2));  // loop already scheduled: no IPI needed
  sim.run();
  EXPECT_EQ(w.processed + w2.processed, 2);
}

TEST(Core, InjectDelaysWork) {
  Simulator sim;
  Core core(sim, 0);
  core.inject(Tag::kOther, 5000);  // idle core: busy until 5000
  Work w(Tag::kDriver, 100);
  w.add(1);
  core.raise(w);
  sim.run();
  EXPECT_EQ(core.free_at(), 5100);
  EXPECT_EQ(core.busy_ns(Tag::kOther), 5000);
}

TEST(Core, UtilizationAndReset) {
  Simulator sim;
  Core core(sim, 0);
  Work w(Tag::kCopy, 250);
  w.add(4);
  core.raise(w);
  sim.run();
  EXPECT_DOUBLE_EQ(core.utilization(2000), 0.5);
  EXPECT_DOUBLE_EQ(core.utilization(500), 1.0);  // clamped
  core.reset_accounting();
  EXPECT_EQ(core.total_busy_ns(), 0);
}

TEST(Core, IdleReflectsState) {
  Simulator sim;
  Core core(sim, 0);
  EXPECT_TRUE(core.idle());
  Work w(Tag::kDriver, 10);
  w.add(1);
  core.raise(w);
  EXPECT_FALSE(core.idle());
  sim.run();
  EXPECT_TRUE(core.idle());
}

TEST(Core, TagNamesDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kTagCount; ++i)
    names.insert(tag_name(static_cast<Tag>(i)));
  EXPECT_EQ(names.size(), kTagCount);
}

TEST(Core, WorkArrivingMidSliceRuns) {
  Simulator sim;
  Core core(sim, 0);
  Work w(Tag::kDriver, 100);
  w.add(1);
  core.raise(w);
  sim.at(50, [&] {
    w.add(5);
    core.raise(w);
  });
  sim.run();
  EXPECT_EQ(w.processed, 6);
}
