// Batch-based flow reassembling — the paper's core ordering invariant:
// for ANY batch size, core count, and deposit interleaving, the merged
// stream equals the original flow order with no loss and no duplication.
#include <gtest/gtest.h>

#include <vector>

#include "core/reassembler.hpp"
#include "util/rng.hpp"

using namespace mflow;
using mflowcore_Reassembler = core::Reassembler;

namespace {

net::PacketPtr mk(net::FlowId flow, std::uint64_t wire_seq,
                  std::uint64_t microflow, std::uint32_t segs = 1) {
  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                   2, net::Ipv4Header::kProtoUdp},
      100);
  p->flow_id = flow;
  p->wire_seq = wire_seq;
  p->microflow_id = microflow;
  p->gro_segs = segs;
  return p;
}

}  // namespace

TEST(Reassembler, PassthroughForUnsplitTraffic) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  ra.deposit(mk(1, 0, /*microflow=*/0), 2);
  ra.deposit(mk(1, 1, 0), 3);
  EXPECT_TRUE(ra.pop_ready_available());
  auto a = ra.pop_ready();
  auto b = ra.pop_ready();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->wire_seq, 0u);
  EXPECT_EQ(b->wire_seq, 1u);
  EXPECT_EQ(ra.pop_ready(), nullptr);
}

TEST(Reassembler, InBatchPacketsConsumableImmediately) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  ra.note_batch_open(1, 1);
  ra.note_dispatch(1, 1, 1);
  ra.deposit(mk(1, 0, 1), 2);
  // Batch 1 still open — but its deposited packets are consumable.
  EXPECT_TRUE(ra.pop_ready_available());
  EXPECT_NE(ra.pop_ready(), nullptr);
  EXPECT_FALSE(ra.pop_ready_available());
}

TEST(Reassembler, HoldsLaterBatchUntilEarlierComplete) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  // Batch 1 (2 pkts) to core A; batch 2 opened, to core B.
  ra.note_batch_open(1, 1);
  ra.note_dispatch(1, 1, 1);
  ra.note_dispatch(1, 1, 1);
  ra.note_batch_open(1, 2);
  ra.note_dispatch(1, 2, 1);
  // Batch 2's packet arrives first (core B was faster).
  ra.deposit(mk(1, 2, 2), 3);
  EXPECT_FALSE(ra.pop_ready_available());
  EXPECT_TRUE(ra.has_buffered());
  // Batch 1 arrives; everything drains in wire order.
  ra.deposit(mk(1, 0, 1), 2);
  ra.deposit(mk(1, 1, 1), 2);
  std::vector<std::uint64_t> order;
  while (auto p = ra.pop_ready()) order.push_back(p->wire_seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(ra.batches_merged(), 1u);  // advanced past batch 1
  EXPECT_EQ(ra.ooo_arrivals(), 2u);    // wire 0 and 1 arrived after wire 2
}

TEST(Reassembler, GroSegsCountTowardBatchCompletion) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  ra.note_batch_open(1, 1);
  for (int i = 0; i < 4; ++i) ra.note_dispatch(1, 1, 1);
  ra.note_batch_open(1, 2);
  ra.note_dispatch(1, 2, 1);
  ra.deposit(mk(1, 4, 2), 3);
  // One super-skb carrying all 4 segments of batch 1 (GRO after split).
  ra.deposit(mk(1, 0, 1, /*segs=*/4), 2);
  auto a = ra.pop_ready();
  ASSERT_TRUE(a);
  EXPECT_EQ(a->microflow_id, 1u);
  auto b = ra.pop_ready();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->microflow_id, 2u);
}

TEST(Reassembler, NoteDropUnblocksMerging) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  ra.note_batch_open(1, 1);
  ra.note_dispatch(1, 1, 1);
  ra.note_dispatch(1, 1, 1);  // this one will be lost in flight
  ra.note_batch_open(1, 2);
  ra.note_dispatch(1, 2, 1);
  ra.deposit(mk(1, 0, 1), 2);
  ra.deposit(mk(1, 2, 2), 3);
  EXPECT_NE(ra.pop_ready(), nullptr);   // batch-1 packet
  EXPECT_EQ(ra.pop_ready(), nullptr);   // batch 1 looks incomplete
  ra.note_drop(1, 1, 1);                // splitter retracts the lost packet
  auto p = ra.pop_ready();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->microflow_id, 2u);
}

TEST(Reassembler, ChargesPerSkbAndPerBatch) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  ra.note_batch_open(1, 1);
  ra.note_dispatch(1, 1, 1);
  ra.note_batch_open(1, 2);
  ra.note_dispatch(1, 2, 1);
  ra.deposit(mk(1, 0, 1), 2);
  ra.deposit(mk(1, 1, 2), 3);
  (void)ra.pop_ready();
  EXPECT_EQ(ra.take_pending_charge(), costs.mflow_merge_per_skb);
  (void)ra.pop_ready();
  // Advancing to batch 2 adds the per-batch charge.
  EXPECT_EQ(ra.take_pending_charge(),
            costs.mflow_merge_per_batch + costs.mflow_merge_per_skb);
  EXPECT_EQ(ra.take_pending_charge(), 0);
}

TEST(Reassembler, MultipleFlowsRoundRobin) {
  stack::CostModel costs;
  core::Reassembler ra(costs);
  for (net::FlowId f : {1ull, 2ull}) {
    ra.note_batch_open(f, 1);
    for (int i = 0; i < 3; ++i) ra.note_dispatch(f, 1, 1);
    for (int i = 0; i < 3; ++i)
      ra.deposit(mk(f, static_cast<std::uint64_t>(i), 1), 2);
  }
  int flow1 = 0, flow2 = 0;
  while (auto p = ra.pop_ready()) (p->flow_id == 1 ? flow1 : flow2)++;
  EXPECT_EQ(flow1, 3);
  EXPECT_EQ(flow2, 3);
}

// ---- property test: random interleavings -----------------------------------

struct ReassemblyParams {
  std::uint32_t batch_size;
  int cores;
  std::uint64_t seed;
};

class ReassemblerProperty
    : public ::testing::TestWithParam<ReassemblyParams> {};

TEST_P(ReassemblerProperty, AnyInterleavingMergesToOriginalOrder) {
  const auto param = GetParam();
  stack::CostModel costs;
  core::Reassembler ra(costs);
  util::Rng rng(param.seed);

  // Simulate a splitter: 1000 packets, batches round-robin over cores.
  constexpr int kPackets = 1000;
  std::vector<std::vector<net::PacketPtr>> per_core(
      static_cast<std::size_t>(param.cores));
  std::uint64_t batch = 0;
  std::uint32_t in_batch = param.batch_size;  // force new batch at start
  std::size_t core_idx = 0;
  for (int i = 0; i < kPackets; ++i) {
    if (in_batch >= param.batch_size) {
      ++batch;
      in_batch = 0;
      core_idx = (core_idx + 1) % per_core.size();
      ra.note_batch_open(1, batch);
    }
    ++in_batch;
    ra.note_dispatch(1, batch, 1);
    per_core[core_idx].push_back(
        mk(1, static_cast<std::uint64_t>(i), batch));
  }

  // Cores deposit their FIFO queues at random relative speeds, while the
  // reader concurrently drains whatever is ready.
  std::vector<std::uint64_t> merged;
  std::vector<std::size_t> pos(per_core.size(), 0);
  bool remaining = true;
  while (remaining) {
    remaining = false;
    for (std::size_t c = 0; c < per_core.size(); ++c) {
      const std::size_t burst = rng.uniform(8);
      for (std::size_t k = 0; k < burst && pos[c] < per_core[c].size(); ++k)
        ra.deposit(std::move(per_core[c][pos[c]++]), static_cast<int>(c));
      if (pos[c] < per_core[c].size()) remaining = true;
    }
    if (rng.chance(0.7)) {
      while (auto p = ra.pop_ready()) merged.push_back(p->wire_seq);
    }
  }
  while (auto p = ra.pop_ready()) merged.push_back(p->wire_seq);

  // THE invariant: exact original order, no loss, no duplication.
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i)
    ASSERT_EQ(merged[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i))
        << "batch=" << param.batch_size << " cores=" << param.cores;
  EXPECT_FALSE(ra.has_buffered());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReassemblerProperty,
    ::testing::Values(ReassemblyParams{1, 2, 1}, ReassemblyParams{8, 2, 2},
                      ReassemblyParams{64, 2, 3}, ReassemblyParams{256, 2, 4},
                      ReassemblyParams{256, 4, 5}, ReassemblyParams{16, 8, 6},
                      ReassemblyParams{512, 3, 7},
                      ReassemblyParams{1024, 2, 8},
                      ReassemblyParams{3, 5, 9}, ReassemblyParams{7, 7, 10}));
