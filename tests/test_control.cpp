// Dynamic flow control plane: monitor -> classifier -> scaler units, the
// shared MergeStream concept instantiated for BOTH engines' reassemblers,
// and live elephant<->mouse rescales end to end in the DES scenario.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "control/classifier.hpp"
#include "control/monitor.hpp"
#include "control/policy.hpp"
#include "core/merge_view.hpp"
#include "core/splitter.hpp"
#include "experiment/scenario.hpp"
#include "rt/merge_view.hpp"

using namespace mflow;
using control::FlowClass;

// --- FlowMonitor -------------------------------------------------------------

TEST(FlowMonitor, RateZeroUntilTwoSamples) {
  control::FlowMonitor mon;
  EXPECT_DOUBLE_EQ(mon.rate_pps(1), 0.0);
  mon.record(1, 1000, 1'500'000, 0);
  EXPECT_DOUBLE_EQ(mon.rate_pps(1), 0.0);
  mon.record(1, 2000, 3'000'000, sim::ms(1));
  // 1000 segs / 1ms, 1.5MB / 1ms * 8.
  EXPECT_DOUBLE_EQ(mon.rate_pps(1), 1e6);
  EXPECT_DOUBLE_EQ(mon.rate_bps(1), 1.5e6 * 8.0 * 1000.0);
}

TEST(FlowMonitor, SlidingWindowForgetsOldRate) {
  control::FlowMonitor mon(control::MonitorParams{sim::ms(1), 32});
  // 100 segs per 250us for 2ms, then the flow goes silent.
  std::uint64_t total = 0;
  sim::Time t = 0;
  for (int i = 0; i < 8; ++i) {
    total += 100;
    t += sim::us(250);
    mon.record(1, total, total * 1500, t);
  }
  EXPECT_NEAR(mon.rate_pps(1), 400'000.0, 1.0);
  // Flat samples push the active burst out of the window: rate decays to 0.
  for (int i = 0; i < 8; ++i) {
    t += sim::us(250);
    mon.record(1, total, total * 1500, t);
  }
  EXPECT_DOUBLE_EQ(mon.rate_pps(1), 0.0);
  EXPECT_EQ(mon.total_segs(1), total);
}

TEST(FlowMonitor, FlowsListedInFirstSeenOrder) {
  control::FlowMonitor mon;
  mon.record(9, 1, 1, 0);
  mon.record(3, 1, 1, 0);
  mon.record(9, 2, 2, sim::us(100));
  EXPECT_EQ(mon.flows(), (std::vector<net::FlowId>{9, 3}));
}

// --- Classifier hysteresis ---------------------------------------------------

namespace {

control::ClassifierParams band_params() {
  control::ClassifierParams p;
  p.promote_pps = 100'000.0;
  p.demote_pps = 50'000.0;
  p.dwell = sim::us(200);
  return p;
}

}  // namespace

TEST(Classifier, PromotionRequiresDwell) {
  control::Classifier cl(band_params());
  EXPECT_EQ(cl.update(1, 200'000.0, sim::us(0)), FlowClass::kMouse);
  EXPECT_EQ(cl.update(1, 200'000.0, sim::us(100)), FlowClass::kMouse);
  EXPECT_EQ(cl.update(1, 200'000.0, sim::us(200)), FlowClass::kElephant);
  EXPECT_EQ(cl.transitions(), 1u);
}

TEST(Classifier, BandOscillationNeverFlaps) {
  control::Classifier cl(band_params());
  cl.update(1, 200'000.0, 0);
  cl.update(1, 200'000.0, sim::us(200));
  ASSERT_EQ(cl.classify(1), FlowClass::kElephant);
  // Rate bouncing INSIDE the band (above demote, below promote) argues for
  // the committed state: no candidate ever forms, no flap.
  sim::Time t = sim::us(200);
  for (int i = 0; i < 50; ++i) {
    t += sim::us(100);
    cl.update(1, i % 2 == 0 ? 60'000.0 : 95'000.0, t);
    EXPECT_EQ(cl.classify(1), FlowClass::kElephant);
  }
  EXPECT_EQ(cl.transitions(), 1u);
}

TEST(Classifier, ThresholdOscillationFasterThanDwellNeverFlaps) {
  control::Classifier cl(band_params());
  cl.update(1, 200'000.0, 0);
  cl.update(1, 200'000.0, sim::us(200));
  ASSERT_EQ(cl.classify(1), FlowClass::kElephant);
  // Rate alternating ACROSS the whole band every 100us: each demote
  // candidate is cancelled before the 200us dwell elapses.
  sim::Time t = sim::us(200);
  for (int i = 0; i < 50; ++i) {
    t += sim::us(100);
    cl.update(1, i % 2 == 0 ? 40'000.0 : 200'000.0, t);
    EXPECT_EQ(cl.classify(1), FlowClass::kElephant);
  }
  EXPECT_EQ(cl.transitions(), 1u);
}

TEST(Classifier, SustainedLowRateDemotes) {
  control::Classifier cl(band_params());
  cl.update(1, 200'000.0, 0);
  cl.update(1, 200'000.0, sim::us(200));
  ASSERT_EQ(cl.classify(1), FlowClass::kElephant);
  EXPECT_EQ(cl.update(1, 10'000.0, sim::us(300)), FlowClass::kElephant);
  EXPECT_EQ(cl.update(1, 10'000.0, sim::us(500)), FlowClass::kMouse);
  EXPECT_EQ(cl.transitions(), 2u);
}

// --- ScalingPolicy -----------------------------------------------------------

TEST(ScalingPolicy, MiceGetDegreeZero) {
  control::ScalingPolicy pol;
  EXPECT_EQ(pol.degree_for(FlowClass::kMouse, 1e9, 4), 0u);
}

TEST(ScalingPolicy, ElephantDegreeTracksRate) {
  control::ScalingParams p;
  p.per_core_pps = 100'000.0;
  control::ScalingPolicy pol(p);
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 50'000.0, 4), 1u);
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 250'000.0, 4), 3u);
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 1e9, 4), 4u);  // clamped
}

TEST(ScalingPolicy, MinElephantDegreeFloors) {
  control::ScalingParams p;
  p.per_core_pps = 100'000.0;
  p.min_elephant_degree = 2;
  control::ScalingPolicy pol(p);
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 10'000.0, 4), 2u);
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 10'000.0, 1), 1u);
}

TEST(ScalingPolicy, ShrinkDeadbandHoldsDegreeNearBoundary) {
  control::ScalingParams p;
  p.per_core_pps = 100'000.0;
  p.shrink_margin = 0.8;
  control::ScalingPolicy pol(p);
  // want = 3 but 290k > 3*100k*0.8: not enough headroom, hold 4.
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 290'000.0, 4, 4), 4u);
  // 230k fits 3 lanes with margin: shrink commits.
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 230'000.0, 4, 4), 3u);
  // Growing is never deadbanded.
  EXPECT_EQ(pol.degree_for(FlowClass::kElephant, 350'000.0, 4, 2), 4u);
}

// --- Controller loop ---------------------------------------------------------

namespace {

struct FakeTarget final : control::CapacityTarget {
  std::vector<std::pair<net::FlowId, std::uint32_t>> calls;
  void set_flow_degree(net::FlowId flow, std::uint32_t degree) override {
    calls.emplace_back(flow, degree);
  }
  std::uint32_t max_degree() const override { return 4; }
};

}  // namespace

TEST(Controller, PromotesScalesAndDemotes) {
  FakeTarget target;
  // Flow 1 at 500k pps, flow 2 at 1k pps; flow 1 goes silent at 2ms.
  std::uint64_t segs1 = 0, segs2 = 0;
  control::ControllerParams params;  // defaults: 1ms window, 200us dwell
  control::Controller ctl(
      params,
      [&] {
        return std::vector<control::Controller::FlowTotals>{
            {1, segs1, segs1 * 1500}, {2, segs2, segs2 * 1500}};
      },
      &target);

  for (sim::Time t = sim::us(100); t <= sim::ms(5); t += sim::us(100)) {
    if (t <= sim::ms(2)) segs1 += 50;  // 500k pps until the throttle
    segs2 += 1;                        // 10k pps mouse throughout
    ctl.tick(t);
  }

  // Flow 1: promoted (500k/150k -> 4 lanes), then demoted back to 0.
  ASSERT_GE(ctl.history().size(), 2u);
  EXPECT_EQ(ctl.history().front().flow, 1u);
  EXPECT_EQ(ctl.history().front().old_degree, 0u);
  EXPECT_EQ(ctl.history().front().new_degree, 4u);
  EXPECT_EQ(ctl.history().back().new_degree, 0u);
  EXPECT_EQ(ctl.degree_of(1), 0u);
  EXPECT_EQ(ctl.elephants(), 0u);
  // The mouse was never retargeted: no call mentions flow 2, and no-op
  // ticks emit nothing (history has exactly the committed changes).
  for (const auto& [flow, degree] : target.calls) EXPECT_EQ(flow, 1u);
  EXPECT_EQ(target.calls.size(), ctl.history().size());
}

// --- MergeStream concept: both engines through the same helpers --------------

namespace {

// Deposit `count` packets of `batch` carrying seqs [first_seq, ...) through
// the view. `mk` is the engine-specific item builder.
template <typename View, typename MakeItem>
void deposit_run(View& v, MakeItem&& mk, std::uint64_t batch,
                 std::uint64_t first_seq, int count) {
  for (int i = 0; i < count; ++i)
    EXPECT_TRUE(v.deposit(mk(first_seq + static_cast<std::uint64_t>(i),
                             batch)));
}

// Pop everything currently ready, appending original-flow seqs.
template <typename View>
void drain_into(View& v, std::vector<std::uint64_t>& seqs) {
  while (auto item = v.pop())
    seqs.push_back(v.descriptor(*item).first);
}

// The shared invariant both engines uphold across a live rescale: every
// deposited seq comes out exactly once, in original flow order.
void expect_full_in_order(const std::vector<std::uint64_t>& seqs,
                          std::uint64_t count) {
  ASSERT_EQ(seqs.size(), count);
  for (std::uint64_t i = 0; i < count; ++i) EXPECT_EQ(seqs[i], i);
}

net::PacketPtr core_item(net::FlowId flow, std::uint64_t seq,
                         std::uint64_t microflow) {
  auto p = net::make_udp_datagram(
      net::FlowKey{net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2), 1,
                   2, net::Ipv4Header::kProtoUdp},
      100);
  p->flow_id = flow;
  p->wire_seq = seq;
  p->microflow_id = microflow;
  return p;
}

}  // namespace

// DES reassembler through the concept: split at degree 2, demote (unsplit
// hold), re-split — the full rescale-drain protocol, observed only through
// the MergeStream surface.
TEST(MergeStream, CoreViewOrderedAcrossRescale) {
  const net::FlowId kFlow = 7;
  stack::CostModel costs;
  core::Reassembler ra(costs);
  core::MergeStreamView view(ra, kFlow);
  auto mk = [&](std::uint64_t seq, std::uint64_t batch) {
    return core_item(kFlow, seq, batch);
  };
  std::vector<std::uint64_t> seqs;

  // Split period 1: batches 1-2, two packets each (seqs 0-3).
  ra.note_flow_split(kFlow, 0, 1);
  ra.note_batch_open(kFlow, 1);
  ra.note_dispatch(kFlow, 1, 1);
  ra.note_dispatch(kFlow, 1, 1);
  ra.note_batch_open(kFlow, 2);
  ra.note_dispatch(kFlow, 2, 1);
  ra.note_dispatch(kFlow, 2, 1);
  // Batch 2 lands first: nothing ready until batch 1 fills in.
  deposit_run(view, mk, 2, 2, 2);
  drain_into(view, seqs);
  EXPECT_TRUE(seqs.empty());
  deposit_run(view, mk, 1, 0, 2);
  drain_into(view, seqs);
  EXPECT_EQ(seqs.size(), 4u);

  // Batch 3 opens, gets one of its two packets...
  ra.note_batch_open(kFlow, 3);
  ra.note_dispatch(kFlow, 3, 1);
  ra.note_dispatch(kFlow, 3, 1);
  deposit_run(view, mk, 3, 4, 1);
  drain_into(view, seqs);
  // ...then the flow demotes: its default-path packet (seq 6) must be held
  // behind batch 3's still-missing seq 5.
  ra.note_flow_unsplit(kFlow);
  deposit_run(view, mk, 0, 6, 1);
  drain_into(view, seqs);
  EXPECT_EQ(seqs.size(), 5u);  // seq 6 held, seq 5 outstanding
  deposit_run(view, mk, 3, 5, 1);
  drain_into(view, seqs);

  // Re-split (period 2, batch 4): the pre-split gate waits for the one
  // default-path segment, which the flushed hold supplies.
  ra.note_flow_split(kFlow, 1, 4);
  ra.note_batch_open(kFlow, 4);
  ra.note_dispatch(kFlow, 4, 1);
  ra.note_dispatch(kFlow, 4, 1);
  deposit_run(view, mk, 4, 7, 2);
  drain_into(view, seqs);

  expect_full_in_order(seqs, 9);
  EXPECT_TRUE(view.drained());
  EXPECT_GE(view.batches_merged(), 2u);
}

TEST(MergeStream, CoreViewNoteDropUnblocksMerge) {
  const net::FlowId kFlow = 3;
  stack::CostModel costs;
  core::Reassembler ra(costs);
  core::MergeStreamView view(ra, kFlow);
  auto mk = [&](std::uint64_t seq, std::uint64_t batch) {
    return core_item(kFlow, seq, batch);
  };
  ra.note_flow_split(kFlow, 0, 1);
  ra.note_batch_open(kFlow, 1);
  ra.note_dispatch(kFlow, 1, 1);
  ra.note_dispatch(kFlow, 1, 1);
  ra.note_batch_open(kFlow, 2);
  ra.note_dispatch(kFlow, 2, 1);
  // Seq 1 (batch 1) is lost before the merge point; batch 2 would wedge
  // behind it without the retraction.
  std::vector<std::uint64_t> seqs;
  deposit_run(view, mk, 1, 0, 1);
  deposit_run(view, mk, 2, 2, 1);
  drain_into(view, seqs);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0}));
  view.note_drop(1, 1);
  drain_into(view, seqs);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 2}));
  EXPECT_TRUE(view.drained());
}

// rt reassembler through the same helpers: shrink 2->1 workers then grow
// back, with the engine's epoch-flush markers closing the completion gaps.
TEST(MergeStream, RtViewOrderedAcrossRescale) {
  rt::RtReassembler ra(2, 64);
  rt::RtMergeStreamView view(ra);
  auto mk = [](std::uint64_t seq, std::uint64_t batch) {
    rt::RtPacket p;
    p.seq = seq;
    p.batch = batch;
    return p;
  };
  std::vector<std::uint64_t> seqs;

  // Epoch {1, 2 workers}: b1 -> ring 0, b2 -> ring 1, b3 -> ring 0. Batch 2
  // deposited first — order must still come out 0..N.
  deposit_run(view, mk, 2, 2, 2);
  deposit_run(view, mk, 1, 0, 2);
  deposit_run(view, mk, 3, 4, 2);

  // Shrink to 1 worker from batch 4: announce, then flush-mark every
  // previously-active ring exactly as the engine's generator does.
  ASSERT_TRUE(ra.announce_epoch({4, 1}));
  for (std::size_t w = 0; w < 2; ++w) {
    rt::RtPacket mark;
    mark.batch = 4;
    mark.marker = true;
    ASSERT_TRUE(ra.deposit(w, std::move(mark)));
  }
  deposit_run(view, mk, 4, 6, 2);
  deposit_run(view, mk, 5, 8, 2);

  // Grow back to 2 workers from batch 6 (ring 0 was the only active one).
  ASSERT_TRUE(ra.announce_epoch({6, 2}));
  {
    rt::RtPacket mark;
    mark.batch = 6;
    mark.marker = true;
    ASSERT_TRUE(ra.deposit(0, std::move(mark)));
  }
  deposit_run(view, mk, 6, 10, 2);
  deposit_run(view, mk, 7, 12, 2);

  drain_into(view, seqs);
  // End of stream: the final batches have no successor to prove them
  // complete — the engine force-advances there.
  ra.force_advance();
  drain_into(view, seqs);
  ra.force_advance();
  drain_into(view, seqs);

  expect_full_in_order(seqs, 14);
  // Every ring empty, including the stale marker a shrink stranded on
  // ring 1 (discarded when the grow epoch made ring 1 active again).
  EXPECT_TRUE(view.drained());
  EXPECT_GE(view.batches_merged(), 6u);
}

TEST(MergeStream, RtViewNoteDropIsAccounted) {
  rt::RtReassembler ra(2, 64);
  rt::RtMergeStreamView view(ra);
  view.note_drop(3, 5);
  EXPECT_EQ(ra.drops_noted(), 5u);
}

// --- BatchAssigner degree overrides ------------------------------------------

TEST(BatchAssigner, DegreeOverrideWinsOverThreshold) {
  core::MflowConfig cfg;
  cfg.batch_size = 4;
  cfg.splitting_cores = {2, 3, 4, 5};
  cfg.elephant_threshold_pkts = 1'000'000;  // static policy: never split
  core::BatchAssigner a(cfg);
  EXPECT_EQ(a.assign(1, 1).microflow_id, 0u);
  a.set_flow_degree(1, 2);
  // Split immediately, round-robin over exactly two distinct cores.
  std::set<int> cores;
  bool first = true;
  for (int i = 0; i < 16; ++i) {
    const auto as = a.assign(1, 1);
    EXPECT_NE(as.microflow_id, 0u);
    EXPECT_EQ(as.first_split, first);
    first = false;
    cores.insert(as.target_core);
  }
  EXPECT_EQ(cores.size(), 2u);
  EXPECT_EQ(a.flow_degree(1), 2u);
}

TEST(BatchAssigner, DegreeZeroForcesUnsplitWithDrainFlag) {
  core::MflowConfig cfg;
  cfg.batch_size = 4;
  cfg.splitting_cores = {2, 3};
  cfg.elephant_threshold_pkts = 0;  // static policy: always split
  core::BatchAssigner a(cfg);
  ASSERT_NE(a.assign(1, 1).microflow_id, 0u);
  a.set_flow_degree(1, 0);
  // First default-path packet after the override carries the unsplit flag
  // (the reassembler's cue to run the drain hold); later ones don't.
  const auto first = a.assign(1, 1);
  EXPECT_EQ(first.microflow_id, 0u);
  EXPECT_TRUE(first.unsplit);
  const auto second = a.assign(1, 1);
  EXPECT_EQ(second.microflow_id, 0u);
  EXPECT_FALSE(second.unsplit);
  // Re-promotion resumes with a fresh split period carrying prior_segs.
  a.set_flow_degree(1, 2);
  const auto resumed = a.assign(1, 1);
  EXPECT_TRUE(resumed.first_split);
  EXPECT_EQ(resumed.prior_segs, 2u);
}

// --- ScenarioConfig::validate ------------------------------------------------

namespace {

exp::ScenarioConfig valid_config() {
  exp::ScenarioConfig cfg;
  cfg.warmup = sim::ms(1);
  cfg.measure = sim::ms(2);
  return cfg;
}

}  // namespace

TEST(ScenarioValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(valid_config().validate());
}

TEST(ScenarioValidate, RejectsOverlappingAppAndKernelCores) {
  auto cfg = valid_config();
  cfg.app_cores = 2;
  cfg.first_kernel_core = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsNonPowerOfTwoNicRing) {
  auto cfg = valid_config();
  cfg.nic_ring_capacity = 1000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsControlPlaneWithoutMflow) {
  auto cfg = valid_config();
  cfg.control.enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mode = exp::Mode::kMflow;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ScenarioValidate, RejectsRateChangeForUnknownSender) {
  auto cfg = valid_config();
  cfg.rate_changes.push_back({cfg.num_flows, sim::ms(1), 0});
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsUsageSplitOutsideMeasurement) {
  auto cfg = valid_config();
  cfg.usage_split_at = cfg.warmup + cfg.measure + sim::ms(1);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.usage_split_at = cfg.warmup + sim::ms(1);
  EXPECT_NO_THROW(cfg.validate());
}

// --- DES live rescale, end to end --------------------------------------------

namespace {

exp::ScenarioConfig live_rescale_config() {
  core::MflowConfig mcfg = core::udp_device_scaling_config();
  mcfg.tcp_in_reader = true;
  mcfg.splitting_cores = {2, 3, 4, 5};
  return exp::ScenarioBuilder(exp::Mode::kMflow)
      .tcp(3)
      .message_size(65536)
      .layout(/*server_cores=*/8, /*app_cores=*/1, /*first_kernel_core=*/1,
              /*kernel_cores=*/7)
      .windows(sim::ms(2), sim::ms(10))
      .mflow(mcfg)
      .control([](exp::ScenarioConfig::ControlPlane& cp) {
        cp.interval = sim::us(100);
        cp.params.monitor.window = sim::ms(1);
        cp.params.classifier.promote_pps = 200'000.0;
        cp.params.classifier.demote_pps = 100'000.0;
        cp.params.classifier.dwell = sim::us(300);
      })
      // Flow 0 throttles to mouse rates mid-measurement and surges back: one
      // full elephant -> mouse -> elephant round trip while traffic flows.
      .rate_change(0, sim::ms(5), sim::ms(2))
      .rate_change(0, sim::ms(9), 0)
      .build();
}

}  // namespace

TEST(ControlScenario, LiveRescaleConservesAndOrders) {
  const auto r = exp::run_scenario(live_rescale_config());
  EXPECT_GT(r.goodput_gbps, 1.0);
  EXPECT_GT(r.messages, 0u);
  // The round trip committed: at least one promotion, one demotion, one
  // re-promotion somewhere in the history.
  EXPECT_GE(r.control.rescales, 3u);
  bool saw_demote = false, saw_promote = false;
  for (const auto& ev : r.control.history) {
    if (ev.new_degree == 0 && ev.old_degree > 0) saw_demote = true;
    if (ev.new_degree > 0 && ev.old_degree == 0) saw_promote = true;
  }
  EXPECT_TRUE(saw_promote);
  EXPECT_TRUE(saw_demote);
  // Conservation through every rescale: a faultless run writes nothing
  // off, never forces a merge-head advance, and delivers nothing out of
  // order past the merge point.
  EXPECT_EQ(r.drops_recovered, 0u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.late_deliveries, 0u);
  EXPECT_EQ(r.nic_drops, 0u);
}

TEST(ControlScenario, LiveRescaleDeterministic) {
  const auto a = exp::run_scenario(live_rescale_config());
  const auto b = exp::run_scenario(live_rescale_config());
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.control.rescales, b.control.rescales);
  ASSERT_EQ(a.control.history.size(), b.control.history.size());
  for (std::size_t i = 0; i < a.control.history.size(); ++i) {
    EXPECT_EQ(a.control.history[i].at, b.control.history[i].at);
    EXPECT_EQ(a.control.history[i].flow, b.control.history[i].flow);
    EXPECT_EQ(a.control.history[i].new_degree,
              b.control.history[i].new_degree);
  }
}

// --- flow-state lifecycle under churn ----------------------------------------

// Satellite of the sharded-flow-table fix: the retained sample span must
// never exceed the window. The old trim compared against samples[1],
// keeping up to window + one interval — with a front-loaded burst that
// inflates the measured rate and delays demotion.
TEST(FlowMonitor, WindowTrimBoundsRetainedSpan) {
  control::FlowMonitor mon(control::MonitorParams{sim::ms(1), 32});
  // Burst of 1000 segs in the first interval, then 100 per 250us.
  mon.record(1, 0, 0, 0);
  std::uint64_t total = 1000;
  for (int i = 0; i < 5; ++i) {
    mon.record(1, total, total * 1500, sim::us(250) * (i + 1));
    total += 100;
  }
  // Retained samples must span [250us, 1250us]: 400 segs / 1ms. A trim
  // that keeps the t=0 sample reports (1400 - 0) / 1.25ms = 1.12M.
  EXPECT_DOUBLE_EQ(mon.rate_pps(1), 400'000.0);
}

TEST(FlowMonitor, EraseRetractsRegistryGauges) {
  trace::Registry reg;
  control::MonitorParams mp;
  mp.table.ttl = sim::ms(1);
  control::FlowMonitor mon(mp);
  mon.export_to(&reg);
  mon.record(1, 100, 1000, 0);
  mon.record(2, 100, 1000, 0);
  EXPECT_EQ(reg.num_gauges(), 4u);  // rate_pps + rate_bps per flow

  std::vector<net::FlowId> idle;
  mon.collect_idle(sim::ms(2), idle);
  EXPECT_EQ(idle, (std::vector<net::FlowId>{1, 2}));
  EXPECT_TRUE(mon.erase(1));
  EXPECT_EQ(reg.num_gauges(), 2u);
  EXPECT_FALSE(mon.erase(1));
  mon.clear();
  EXPECT_EQ(reg.num_gauges(), 0u);
  EXPECT_EQ(mon.tracked_flows(), 0u);
}

namespace {

control::ControllerParams churn_controller_params() {
  control::ControllerParams p;
  p.monitor.window = sim::us(400);
  p.monitor.table.ttl = sim::us(500);
  p.classifier.promote_pps = 200'000.0;
  p.classifier.demote_pps = 100'000.0;
  p.classifier.dwell = sim::us(200);
  return p;
}

}  // namespace

// A storm of short flows (arrive, send for 3 ticks, vanish) must leave
// table occupancy and the gauge surface bounded by the LIVE window — not
// by cumulative arrivals. This is the unbounded-growth regression test.
TEST(Controller, ChurnStormKeepsStateAndGaugesBounded) {
  FakeTarget target;
  trace::Registry reg;
  constexpr int kPerTick = 20;   // new flows per tick
  constexpr int kLifeTicks = 3;  // ticks a flow advances totals for
  constexpr int kTicks = 500;
  int tick = 0;
  auto source = [&] {
    std::vector<control::Controller::FlowTotals> v;
    // Flows are numbered by arrival tick; only live ones report.
    for (int born = std::max(0, tick - kLifeTicks); born <= tick; ++born) {
      const int age = tick - born;
      for (int j = 0; j < kPerTick; ++j) {
        const auto id =
            static_cast<net::FlowId>(born) * kPerTick + j + 1000;
        const auto segs = static_cast<std::uint64_t>(
            (std::min(age, kLifeTicks) + 1) * 5);  // 50k pps: mice
        v.push_back({id, segs, segs * 1500});
      }
    }
    return v;
  };
  control::Controller ctl(churn_controller_params(), source, &target);
  ctl.export_to(&reg);
  for (tick = 1; tick <= kTicks; ++tick)
    ctl.tick(sim::us(100) * tick);

  const auto cumulative =
      static_cast<std::uint64_t>(kTicks) * kPerTick;
  // Live window: (lifetime + ttl + dwell slack) worth of flows, far under
  // cumulative. 20 flows/tick * ~10 ticks of retention = ~200.
  EXPECT_GE(ctl.expired_flows(), cumulative - 400);
  EXPECT_LE(ctl.peak_tracked(), 300u);
  EXPECT_LE(ctl.tracked_flows(), 300u);
  // Gauge surface is 2 per tracked flow plus the controller's own few: it
  // must shrink with expiry, not accumulate one pair per cumulative flow.
  EXPECT_LE(reg.num_gauges(), 2 * 300 + 8);
  EXPECT_EQ(ctl.release_retries(), 0u);
}

namespace {

/// Records release_flow calls and vetoes the first `veto_count`.
struct ReleasingTarget final : control::CapacityTarget {
  std::vector<std::pair<net::FlowId, std::uint32_t>> degree_calls;
  std::vector<net::FlowId> releases;
  int veto_count = 0;
  void set_flow_degree(net::FlowId flow, std::uint32_t degree) override {
    degree_calls.emplace_back(flow, degree);
  }
  std::uint32_t max_degree() const override { return 4; }
  bool release_flow(net::FlowId flow) override {
    if (veto_count > 0) {
      --veto_count;
      return false;
    }
    releases.push_back(flow);
    return true;
  }
};

}  // namespace

// An elephant that goes idle is demoted by expiry (degree forced to 0 so
// the drain protocol runs), released, and — when the FlowId later returns
// at mouse rates — starts as a brand-new mouse with no resurrected degree
// override or classifier state.
TEST(Controller, ExpiryDemotesAndFlowIdReuseStartsFresh) {
  ReleasingTarget target;
  std::uint64_t segs = 0;
  bool reporting = true;
  auto source = [&] {
    std::vector<control::Controller::FlowTotals> v;
    if (reporting) v.push_back({7, segs, segs * 1500});
    return v;
  };
  control::Controller ctl(churn_controller_params(), source, &target);

  // Phase 1: elephant (500k pps) promotes.
  sim::Time t = 0;
  for (int i = 0; i < 10; ++i) {
    segs += 50;
    t += sim::us(100);
    ctl.tick(t);
  }
  ASSERT_GT(ctl.degree_of(7), 0u);
  const auto promoted_degree = ctl.degree_of(7);

  // Phase 2: the flow vanishes (source stops reporting it). After the TTL
  // the controller must demote it to 0 (drain) and release it.
  reporting = false;
  for (int i = 0; i < 10; ++i) {
    t += sim::us(100);
    ctl.tick(t);
  }
  EXPECT_EQ(ctl.expired_flows(), 1u);
  EXPECT_EQ(ctl.tracked_flows(), 0u);
  EXPECT_EQ(target.releases, (std::vector<net::FlowId>{7}));
  ASSERT_FALSE(target.degree_calls.empty());
  EXPECT_EQ(target.degree_calls.back(),
            (std::pair<net::FlowId, std::uint32_t>{7, 0}));
  // The expiry demotion is a real history event (old degree -> 0).
  EXPECT_EQ(ctl.history().back().old_degree, promoted_degree);
  EXPECT_EQ(ctl.history().back().new_degree, 0u);

  // Phase 3: FlowId 7 returns at mouse rates. No stale elephant state may
  // resurrect: it stays degree 0 and commits no rescale.
  const auto rescales_before = ctl.rescales();
  reporting = true;
  for (int i = 0; i < 10; ++i) {
    segs += 1;  // 10k pps
    t += sim::us(100);
    ctl.tick(t);
  }
  EXPECT_EQ(ctl.degree_of(7), 0u);
  EXPECT_EQ(ctl.rescales(), rescales_before);
  EXPECT_EQ(ctl.elephants(), 0u);
}

// A vetoed release (drain still in flight) must keep the flow's state
// intact and retry — reclamation is all-or-nothing.
TEST(Controller, ReleaseVetoRetriesUntilAccepted) {
  ReleasingTarget target;
  target.veto_count = 3;
  bool reporting = true;
  std::uint64_t segs = 0;
  auto source = [&] {
    std::vector<control::Controller::FlowTotals> v;
    if (reporting) v.push_back({9, segs, segs * 1500});
    return v;
  };
  control::Controller ctl(churn_controller_params(), source, &target);
  sim::Time t = 0;
  for (int i = 0; i < 5; ++i) {
    segs += 1;
    t += sim::us(100);
    ctl.tick(t);
  }
  reporting = false;
  // Not yet idle for a full TTL (last activity at t=500us, ttl=500us):
  // no candidate, no veto.
  while (t < sim::us(900)) {
    t += sim::us(100);
    ctl.tick(t);
  }
  EXPECT_EQ(ctl.release_retries(), 0u);
  // From t=1000us the flow is a candidate each tick: three ticks are
  // vetoed (flow stays tracked), the fourth reclaims.
  for (int i = 0; i < 3; ++i) {
    t += sim::us(100);
    ctl.tick(t);
  }
  EXPECT_EQ(ctl.expired_flows(), 0u);
  EXPECT_EQ(ctl.tracked_flows(), 1u);
  EXPECT_EQ(ctl.release_retries(), 3u);
  t += sim::us(100);
  ctl.tick(t);
  EXPECT_EQ(ctl.expired_flows(), 1u);
  EXPECT_EQ(ctl.tracked_flows(), 0u);
  EXPECT_EQ(target.releases, (std::vector<net::FlowId>{9}));
}

TEST(ScenarioValidate, RejectsChurnWithoutControlOrTtl) {
  auto cfg = valid_config();
  cfg.control.churn.enabled = true;
  // Churn without the control plane: nothing would read the totals.
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mode = exp::Mode::kMflow;
  cfg.control.enabled = true;
  // Control on, but no TTL: churned flows would never expire.
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.control.params.monitor.table.ttl = sim::ms(1);
  EXPECT_NO_THROW(cfg.validate());
}

// --- DES: expiry interleaved with live rescales --------------------------------

namespace {

exp::ScenarioConfig expiring_rescale_config() {
  exp::ScenarioConfig cfg = live_rescale_config();
  // TTL shorter than flow 0's throttled pace (one message per 2ms): the
  // demoted elephant goes idle between messages, expires mid-run with the
  // unsplit drain potentially still in flight, and re-registers fresh on
  // its next message. The release_flow veto keeps that lossless.
  cfg.control.params.monitor.table.ttl = sim::ms(1);
  return cfg;
}

}  // namespace

TEST(ControlScenario, ExpiryDuringLiveRescaleDrainsLosslessly) {
  const auto r = exp::run_scenario(expiring_rescale_config());
  EXPECT_GT(r.goodput_gbps, 1.0);
  EXPECT_GE(r.control.expired, 1u);
  EXPECT_LE(r.control.tracked, 3u);
  // Expiry must not cost a single packet: nothing written off, no forced
  // merge-head advance, nothing late.
  EXPECT_EQ(r.drops_recovered, 0u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.late_deliveries, 0u);
  EXPECT_EQ(r.nic_drops, 0u);
}

TEST(ControlScenario, ExpiryDuringLiveRescaleDeterministic) {
  const auto a = exp::run_scenario(expiring_rescale_config());
  const auto b = exp::run_scenario(expiring_rescale_config());
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.control.expired, b.control.expired);
  EXPECT_EQ(a.control.peak, b.control.peak);
  EXPECT_EQ(a.control.rescales, b.control.rescales);
}

// Synthetic churn merged into the engine's totals: cumulative flows far
// exceed what is ever tracked at once, and the engine accepts the
// release handshake for flows it never carried.
TEST(ControlScenario, ChurnFlowsExpireAndStayBounded) {
  exp::ScenarioConfig cfg = live_rescale_config();
  cfg.rate_changes.clear();
  cfg.control.params.monitor.table.ttl = sim::ms(1);
  cfg.control.churn.enabled = true;
  cfg.control.churn.flows_per_sec = 100'000.0;
  cfg.control.churn.flow_lifetime = sim::ms(1);
  cfg.control.churn.rate_pps = 20'000.0;
  cfg.control.churn.reverse = true;
  const auto r = exp::run_scenario(cfg);
  // 12ms at 100k flows/s, two directions: ~2400 cumulative synthetic
  // flows, but live window is ~(1ms + 1ms) * 100k * 2 = ~400.
  EXPECT_GE(r.control.expired, 1000u);
  EXPECT_LE(r.control.peak, 800u);
  EXPECT_LE(r.control.tracked, 800u);
  EXPECT_GT(r.goodput_gbps, 1.0);
  EXPECT_EQ(r.drops_recovered, 0u);
  EXPECT_EQ(r.late_deliveries, 0u);
}
