// Application workload models: web serving (Fig 11) and data caching
// (Fig 13) — wiring sanity, metric consistency, and mode ordering.
#include <gtest/gtest.h>

#include "experiment/datacaching.hpp"
#include "experiment/webserving.hpp"

using namespace mflow;

namespace {

exp::WebservingResult quick_web(exp::Mode mode) {
  exp::WebservingConfig cfg;
  cfg.mode = mode;
  cfg.users = 100;
  cfg.warmup = sim::ms(8);
  cfg.measure = sim::ms(20);
  return exp::run_webserving(cfg);
}

}  // namespace

TEST(Webserving, OperationsCompleteAndBalance) {
  const auto res = quick_web(exp::Mode::kMflow);
  EXPECT_GT(res.ops_per_sec, 1000.0);
  EXPECT_GT(res.success_per_sec, 0.0);
  EXPECT_LE(res.success_per_sec, res.ops_per_sec);
  EXPECT_GT(res.backend_goodput_gbps, 1.0);
  // Every configured op type sees traffic with 100 users.
  for (const auto& op : res.per_op) {
    EXPECT_GT(op.attempted, 0u) << op.name;
    EXPECT_LE(op.succeeded, op.completed) << op.name;
    EXPECT_LE(op.completed, op.attempted) << op.name;
  }
}

TEST(Webserving, ResponseNeverBelowServiceFloor) {
  const auto res = quick_web(exp::Mode::kMflow);
  exp::WebservingConfig cfg;  // defaults: service 120us + backend hop 50us
  for (const auto& op : res.per_op) {
    if (op.completed == 0) continue;
    EXPECT_GT(op.response_us.min(),
              sim::to_us(cfg.service_time + cfg.backend_delay))
        << op.name;
  }
}

TEST(Webserving, MflowBeatsVanillaUnderLoad) {
  // 100 users don't saturate the stack; the Fig-11 separation needs the
  // full 200-user load.
  auto run = [](exp::Mode mode) {
    exp::WebservingConfig cfg;
    cfg.mode = mode;
    cfg.users = 200;
    cfg.warmup = sim::ms(10);
    cfg.measure = sim::ms(25);
    return exp::run_webserving(cfg);
  };
  const auto van = run(exp::Mode::kVanilla);
  const auto mfl = run(exp::Mode::kMflow);
  EXPECT_GT(mfl.success_per_sec, van.success_per_sec * 1.3);
  EXPECT_LT(mfl.avg_response_us, van.avg_response_us);
}

TEST(Webserving, Deterministic) {
  const auto a = quick_web(exp::Mode::kVanilla);
  const auto b = quick_web(exp::Mode::kVanilla);
  EXPECT_DOUBLE_EQ(a.success_per_sec, b.success_per_sec);
  EXPECT_DOUBLE_EQ(a.avg_response_us, b.avg_response_us);
}

TEST(Webserving, OpMixWeightsSumToOne) {
  double total = 0;
  for (const auto& op : exp::default_web_ops()) total += op.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

namespace {
exp::DataCachingResult quick_cache(exp::Mode mode, int clients) {
  exp::DataCachingConfig cfg;
  cfg.mode = mode;
  cfg.clients = clients;
  cfg.warmup = sim::ms(5);
  cfg.measure = sim::ms(15);
  return exp::run_datacaching(cfg);
}
}  // namespace

TEST(DataCaching, AchievesOfferedRate) {
  const auto res = quick_cache(exp::Mode::kMflow, 10);
  // 10 clients x 260k req/s, within 10%.
  EXPECT_NEAR(res.achieved_rps, 1.2e6, 1.2e5);
  EXPECT_GT(res.avg_latency_us, sim::to_us(sim::us(12)));  // service floor
  EXPECT_GE(res.p99_latency_us, res.p50_latency_us);
}

TEST(DataCaching, TailShrinksWithMflowAtTenClients) {
  const auto van = quick_cache(exp::Mode::kVanilla, 10);
  const auto mfl = quick_cache(exp::Mode::kMflow, 10);
  EXPECT_LT(mfl.p99_latency_us, van.p99_latency_us);
  EXPECT_LT(mfl.avg_latency_us, van.avg_latency_us);
}

TEST(DataCaching, MoreClientsMoreStressForVanilla) {
  const auto one = quick_cache(exp::Mode::kVanilla, 1);
  const auto ten = quick_cache(exp::Mode::kVanilla, 10);
  EXPECT_GT(ten.p99_latency_us, one.p99_latency_us * 0.9);
}
