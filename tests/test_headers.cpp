// Byte-exact header codec round-trips and validation.
#include <gtest/gtest.h>

#include <array>

#include "net/checksum.hpp"
#include "net/headers.hpp"

using namespace mflow::net;

TEST(Ipv4Addr, Formatting) {
  EXPECT_EQ(Ipv4Addr(192, 168, 1, 2).to_string(), "192.168.1.2");
  EXPECT_EQ(Ipv4Addr(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  h.ethertype = EthernetHeader::kEtherTypeIpv4;
  std::array<std::uint8_t, EthernetHeader::kSize> buf{};
  h.encode(buf);
  EXPECT_EQ(EthernetHeader::decode(buf), h);
  // EtherType is big-endian on the wire.
  EXPECT_EQ(buf[12], 0x08);
  EXPECT_EQ(buf[13], 0x00);
}

TEST(Ipv4, RoundTripAndChecksum) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 1500;
  h.identification = 0xBEEF;
  h.dont_fragment = true;
  h.ttl = 37;
  h.protocol = Ipv4Header::kProtoTcp;
  h.src = Ipv4Addr(10, 0, 1, 2);
  h.dst = Ipv4Addr(10, 0, 1, 3);
  std::array<std::uint8_t, Ipv4Header::kSize> buf{};
  h.encode(buf);
  EXPECT_TRUE(Ipv4Header::verify(buf));
  EXPECT_EQ(Ipv4Header::decode(buf), h);
  EXPECT_EQ(buf[0], 0x45);  // version 4, IHL 5
}

TEST(Ipv4, VerifyRejectsCorruption) {
  Ipv4Header h;
  h.src = Ipv4Addr(1, 2, 3, 4);
  h.dst = Ipv4Addr(5, 6, 7, 8);
  std::array<std::uint8_t, Ipv4Header::kSize> buf{};
  h.encode(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    auto copy = buf;
    copy[i] ^= 0x01;
    EXPECT_FALSE(Ipv4Header::verify(copy)) << "byte " << i;
  }
}

TEST(Ipv4, FragmentFlags) {
  Ipv4Header h;
  h.dont_fragment = false;
  h.more_fragments = true;
  h.fragment_offset = 0x123;
  std::array<std::uint8_t, Ipv4Header::kSize> buf{};
  h.encode(buf);
  const auto d = Ipv4Header::decode(buf);
  EXPECT_FALSE(d.dont_fragment);
  EXPECT_TRUE(d.more_fragments);
  EXPECT_EQ(d.fragment_offset, 0x123);
}

TEST(Udp, RoundTrip) {
  UdpHeader h;
  h.src_port = 41000;
  h.dst_port = VxlanHeader::kUdpPort;
  h.length = 1480;
  std::array<std::uint8_t, UdpHeader::kSize> buf{};
  h.encode(buf);
  EXPECT_EQ(UdpHeader::decode(buf), h);
}

TEST(Tcp, RoundTripWithFlags) {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 5001;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flag_ack = true;
  h.flag_psh = true;
  h.window = 0x7210;
  std::array<std::uint8_t, TcpHeader::kSize> buf{};
  h.encode(buf);
  const auto d = TcpHeader::decode(buf);
  EXPECT_EQ(d, h);
  EXPECT_EQ(buf[12] >> 4, 5);  // data offset = 5 words
}

TEST(Tcp, EachFlagIndependent) {
  for (int bit = 0; bit < 4; ++bit) {
    TcpHeader h;
    h.flag_fin = bit == 0;
    h.flag_syn = bit == 1;
    h.flag_psh = bit == 2;
    h.flag_ack = bit == 3;
    std::array<std::uint8_t, TcpHeader::kSize> buf{};
    h.encode(buf);
    EXPECT_EQ(TcpHeader::decode(buf), h) << "flag " << bit;
  }
}

TEST(Vxlan, RoundTripAndValidation) {
  VxlanHeader h;
  h.vni = 0xABCDEF;
  std::array<std::uint8_t, VxlanHeader::kSize> buf{};
  h.encode(buf);
  EXPECT_TRUE(VxlanHeader::valid(buf));
  EXPECT_EQ(VxlanHeader::decode(buf).vni, 0xABCDEFu);
  // RFC 7348: I flag set, reserved zero.
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x00);
}

TEST(Vxlan, RejectsBadFlags) {
  VxlanHeader h;
  h.vni = 42;
  std::array<std::uint8_t, VxlanHeader::kSize> buf{};
  h.encode(buf);
  auto bad = buf;
  bad[0] = 0x00;  // I flag cleared
  EXPECT_FALSE(VxlanHeader::valid(bad));
  bad = buf;
  bad[1] = 0x01;  // reserved bits set
  EXPECT_FALSE(VxlanHeader::valid(bad));
}

TEST(Vxlan, VniMasksTo24Bits) {
  VxlanHeader h;
  h.vni = 0xFF123456;  // top byte must be dropped
  std::array<std::uint8_t, VxlanHeader::kSize> buf{};
  h.encode(buf);
  EXPECT_EQ(VxlanHeader::decode(buf).vni, 0x123456u);
}
