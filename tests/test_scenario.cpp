// End-to-end scenario tests: every mode runs, produces traffic, and the
// orderings the paper reports hold in the simulation.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"

using namespace mflow;
using exp::Mode;

namespace {

exp::ScenarioResult quick(Mode mode, std::uint8_t proto,
                          std::uint32_t msg = 65536) {
  exp::ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.protocol = proto;
  cfg.message_size = msg;
  cfg.warmup = sim::ms(5);
  cfg.measure = sim::ms(15);
  return exp::run_scenario(cfg);
}

}  // namespace

TEST(Scenario, EveryModeDeliversTcpTraffic) {
  for (Mode m : exp::evaluation_modes()) {
    const auto r = quick(m, net::Ipv4Header::kProtoTcp);
    EXPECT_GT(r.goodput_gbps, 1.0) << r.mode;
    EXPECT_GT(r.messages, 0u) << r.mode;
  }
}

TEST(Scenario, EveryModeDeliversUdpTraffic) {
  for (Mode m : exp::evaluation_modes()) {
    const auto r = quick(m, net::Ipv4Header::kProtoUdp);
    EXPECT_GT(r.goodput_gbps, 0.5) << r.mode;
  }
}

TEST(Scenario, TcpOrderingAcrossModes64KB) {
  const auto nat = quick(Mode::kNative, net::Ipv4Header::kProtoTcp);
  const auto van = quick(Mode::kVanilla, net::Ipv4Header::kProtoTcp);
  const auto rps = quick(Mode::kRps, net::Ipv4Header::kProtoTcp);
  const auto mfl = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  EXPECT_LT(van.goodput_gbps, nat.goodput_gbps);   // overlay tax
  EXPECT_GT(rps.goodput_gbps, van.goodput_gbps);   // RPS helps a bit
  EXPECT_GT(mfl.goodput_gbps, van.goodput_gbps);   // MFLOW helps a lot
  EXPECT_GT(mfl.goodput_gbps, nat.goodput_gbps);   // even beats native
}

TEST(Scenario, DeterministicAcrossRuns) {
  const auto a = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  const auto b = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.ooo_arrivals, b.ooo_arrivals);
}

TEST(Scenario, MflowUsesSplittingCores) {
  const auto r = quick(Mode::kMflow, net::Ipv4Header::kProtoUdp);
  // Device scaling: cores 2 and 3 (the splitting cores) must be doing work.
  EXPECT_GT(r.cores.at(2).total, 0.10);
  EXPECT_GT(r.cores.at(3).total, 0.10);
  EXPECT_GT(r.batches_merged, 0u);
}

TEST(Scenario, VanillaSingleCoreBottleneck) {
  const auto r = quick(Mode::kVanilla, net::Ipv4Header::kProtoUdp);
  // All processing lands on core 1, which saturates.
  EXPECT_GT(r.cores.at(1).total, 0.9);
  EXPECT_LT(r.cores.at(2).total, 0.1);
}

TEST(Scenario, SmallMessagesClientBound) {
  // 16B TCP: the sender is the bottleneck, so all modes look alike.
  const auto van = quick(Mode::kVanilla, net::Ipv4Header::kProtoTcp, 16);
  const auto mfl = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp, 16);
  EXPECT_NEAR(mfl.goodput_gbps / van.goodput_gbps, 1.0, 0.25);
}
