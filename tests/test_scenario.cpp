// End-to-end scenario tests: every mode runs, produces traffic, and the
// orderings the paper reports hold in the simulation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "experiment/scenario.hpp"

using namespace mflow;
using exp::Mode;

namespace {

exp::ScenarioResult quick(Mode mode, std::uint8_t proto,
                          std::uint32_t msg = 65536) {
  exp::ScenarioBuilder b(mode);
  if (proto == net::Ipv4Header::kProtoTcp)
    b.tcp(1);
  else
    b.udp(3);
  return exp::run_scenario(
      b.message_size(msg).windows(sim::ms(5), sim::ms(15)).build());
}

}  // namespace

// --- builder: validate-at-build ----------------------------------------------

TEST(ScenarioBuilder, RejectsInconsistentLayoutAtBuild) {
  // App cores overlapping the kernel range is the classic poke mistake;
  // the builder surfaces it at the call site instead of inside
  // run_scenario().
  exp::ScenarioBuilder b;
  b.layout(/*server_cores=*/4, /*app_cores=*/3, /*first_kernel_core=*/1,
           /*kernel_cores=*/3);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ScenarioBuilder, ClusterConfiguratorEnablesTheCluster) {
  const auto cfg = exp::ScenarioBuilder(Mode::kMflow)
                       .control([](exp::ScenarioConfig::ControlPlane& cp) {
                         cp.interval = sim::us(50);
                       })
                       .build();
  EXPECT_TRUE(cfg.control.enabled);  // passing the cluster means wanting it
  EXPECT_EQ(cfg.control.interval, sim::us(50));
}

TEST(ScenarioBuilder, TweakReachesFieldsWithoutSetters) {
  const auto cfg = exp::ScenarioBuilder()
                       .tweak([](exp::ScenarioConfig& c) {
                         c.packet_pool_slabs = 0;
                         c.adaptive_batch = true;
                       })
                       .build();
  EXPECT_EQ(cfg.packet_pool_slabs, 0u);
  EXPECT_TRUE(cfg.adaptive_batch);
}

TEST(Scenario, EveryModeDeliversTcpTraffic) {
  for (Mode m : exp::evaluation_modes()) {
    const auto r = quick(m, net::Ipv4Header::kProtoTcp);
    EXPECT_GT(r.goodput_gbps, 1.0) << r.mode;
    EXPECT_GT(r.messages, 0u) << r.mode;
  }
}

TEST(Scenario, EveryModeDeliversUdpTraffic) {
  for (Mode m : exp::evaluation_modes()) {
    const auto r = quick(m, net::Ipv4Header::kProtoUdp);
    EXPECT_GT(r.goodput_gbps, 0.5) << r.mode;
  }
}

TEST(Scenario, TcpOrderingAcrossModes64KB) {
  const auto nat = quick(Mode::kNative, net::Ipv4Header::kProtoTcp);
  const auto van = quick(Mode::kVanilla, net::Ipv4Header::kProtoTcp);
  const auto rps = quick(Mode::kRps, net::Ipv4Header::kProtoTcp);
  const auto mfl = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  EXPECT_LT(van.goodput_gbps, nat.goodput_gbps);   // overlay tax
  EXPECT_GT(rps.goodput_gbps, van.goodput_gbps);   // RPS helps a bit
  EXPECT_GT(mfl.goodput_gbps, van.goodput_gbps);   // MFLOW helps a lot
  EXPECT_GT(mfl.goodput_gbps, nat.goodput_gbps);   // even beats native
}

TEST(Scenario, DeterministicAcrossRuns) {
  const auto a = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  const auto b = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp);
  EXPECT_DOUBLE_EQ(a.goodput_gbps, b.goodput_gbps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.ooo_arrivals, b.ooo_arrivals);
}

TEST(Scenario, MflowUsesSplittingCores) {
  const auto r = quick(Mode::kMflow, net::Ipv4Header::kProtoUdp);
  // Device scaling: cores 2 and 3 (the splitting cores) must be doing work.
  EXPECT_GT(r.cores.at(2).total, 0.10);
  EXPECT_GT(r.cores.at(3).total, 0.10);
  EXPECT_GT(r.batches_merged, 0u);
}

TEST(Scenario, VanillaSingleCoreBottleneck) {
  const auto r = quick(Mode::kVanilla, net::Ipv4Header::kProtoUdp);
  // All processing lands on core 1, which saturates.
  EXPECT_GT(r.cores.at(1).total, 0.9);
  EXPECT_LT(r.cores.at(2).total, 0.1);
}

TEST(Scenario, SmallMessagesClientBound) {
  // 16B TCP: the sender is the bottleneck, so all modes look alike.
  const auto van = quick(Mode::kVanilla, net::Ipv4Header::kProtoTcp, 16);
  const auto mfl = quick(Mode::kMflow, net::Ipv4Header::kProtoTcp, 16);
  EXPECT_NEAR(mfl.goodput_gbps / van.goodput_gbps, 1.0, 0.25);
}
