// Randomized-configuration robustness: arbitrary (mode, protocol, size,
// flows, batch, cores, seed) combinations must run without crashing, keep
// every core within 100% utilization, and conserve messages. This is the
// catch-all net under the whole system.
#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "util/rng.hpp"

using namespace mflow;

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, RandomConfigBehavesSanely) {
  util::Rng rng(GetParam());

  exp::ScenarioConfig cfg;
  const auto modes = exp::motivation_modes();
  cfg.mode = rng.chance(0.4)
                 ? exp::Mode::kMflow
                 : modes[rng.uniform(modes.size())];
  cfg.protocol = rng.chance(0.5) ? net::Ipv4Header::kProtoTcp
                                 : net::Ipv4Header::kProtoUdp;
  const std::uint32_t sizes[] = {16, 100, 550, 1448, 4096, 16384, 65536};
  cfg.message_size = sizes[rng.uniform(7)];
  cfg.num_flows = static_cast<int>(1 + rng.uniform(4));
  cfg.udp_clients = static_cast<int>(1 + rng.uniform(4));
  cfg.warmup = sim::ms(2);
  cfg.measure = sim::ms(6);
  cfg.seed = GetParam() * 7919;

  if (cfg.mode == exp::Mode::kMflow) {
    core::MflowConfig mcfg;
    mcfg.batch_size = static_cast<std::uint32_t>(1 + rng.uniform(512));
    mcfg.split_point = rng.chance(0.5) ? core::SplitPoint::kIrq
                                       : core::SplitPoint::kBeforeStage;
    mcfg.tcp_in_reader = true;
    mcfg.splitting_cores.clear();
    const int n_split = static_cast<int>(1 + rng.uniform(4));
    for (int c = 0; c < n_split; ++c) mcfg.splitting_cores.push_back(2 + c);
    mcfg.elephant_threshold_pkts = rng.chance(0.2) ? 50 : 0;
    cfg.mflow = mcfg;
    cfg.adaptive_batch = rng.chance(0.3);
  }

  const auto res = exp::run_scenario(cfg);

  // Sanity: traffic flowed; no core overruns; latency histogram consistent.
  EXPECT_GT(res.goodput_gbps, 0.0) << "seed " << GetParam();
  // Backlog queued during warmup may drain inside the window, so delivered
  // can modestly exceed the same-window offered bytes — but never wildly.
  EXPECT_LE(res.goodput_gbps, res.offered_gbps * 1.15 + 0.01);
  for (const auto& c : res.cores) {
    EXPECT_LE(c.total, 1.0 + 1e-9) << "core " << c.core_id;
    double sum = 0;
    for (double t : c.by_tag) sum += t;
    // A slice charged at its start may spill past the window edge, so the
    // tag sum can exceed the window by up to one NAPI slice; total clamps.
    EXPECT_LE(sum, 1.05) << "core " << c.core_id;
    EXPECT_NEAR(std::min(1.0, sum), c.total, 1e-6) << "core " << c.core_id;
  }
  if (res.messages > 0) {
    EXPECT_GT(res.latency.count(), 0u);
    EXPECT_LE(res.latency.p50(), res.latency.p99());
  }
  // Goodput is explained by completed messages plus at most the in-flight
  // tail (fragmented messages and stream remainders).
  const double msg_bytes =
      static_cast<double>(res.messages) * cfg.message_size;
  const double good_bytes =
      res.goodput_gbps * 1e9 / 8.0 * sim::to_seconds(cfg.measure);
  EXPECT_LE(msg_bytes, good_bytes * 1.05 + 2.0 * 65536.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScenarioFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));
